"""Micro-benchmarks for the batched memory fast path (``repro bench``).

Each workload is run twice on fresh machines — once with the legacy
per-lane serial walk (``VectorMachine.use_batched_memory = False``) and
once with the batched ``access_batch`` engine — under identical inputs
and seeds.  The harness reports old-vs-new wall-clock, verifies the two
paths produced **bit-identical** machine statistics (any divergence is a
correctness bug, not a benchmark artifact), and writes the report to
``results/BENCH_membatch.json``.

Workloads:

``stride_sweep``
    Strided gathers at strides 1..16 elements over an L1-resident
    buffer — the run-length-collapse sweet spot.
``random_gather``
    Uniformly random byte gathers over an L1-resident buffer — no
    collapse possible; measures pure per-lane overhead.
``wfa_extend``
    The WFA extend inner loop (``vec_extend``: two ``gather64`` windows
    per iteration) on synthetic sequences.
``fig4_cell``
    End to end: the Fig. 4 VEC/SS cell (vectorised banded
    Smith-Waterman) on a slice of the 250bp dataset through
    ``run_implementation``.  Dataset synthesis happens outside the
    timed region — the cell measures alignment work, not the
    generator.
``replay_extend``
    The WFA extend inner loop again, but comparing the interpreted
    step-by-step execution against the recorded-program replay engine
    (``repro.vector.program``); both legs keep batched memory on.
``replay_ss``
    End-to-end Fig. 4 SS cell with replay off vs on — the same
    bit-identity contract, measured through ``run_implementation``.
``fleet_extend``
    The steady-state extend loop on 64 independent read-pairs, each on
    its own fresh machine at the 2048-bit (32-lane) vector width —
    per-pair serial fibers vs the fleet executor fusing all pairs'
    identical replay blocks per step (:mod:`repro.vector.fleet`).
``fleet_fig4``
    End to end: the Fig. 4 SS cell through ``run_implementation`` with
    ``fleet=1`` (one pair at a time, fresh machine per pair) vs
    ``fleet=64`` — the ``--fleet N == --fleet 1`` CLI contract,
    measured per pair.
``memvec_gather``
    Repeating strided gathers cycling through a small rotation of base
    offsets — the pattern-memoization sweet spot of the vectorized
    memory-model engine (:mod:`repro.memory.memvec`): after one warmup
    lap every batch replays a compiled pattern instead of walking the
    hierarchy request by request.  Toggles the ``memvec`` dimension
    (``MemoryHierarchy.use_vectorized_memory`` off vs on) with batched
    memory, replay, and fleet width 64 pinned on both legs.

The membatch workloads compare ``use_batched_memory`` off vs on (replay
pinned off on both legs so it cannot blur the comparison); the replay
workloads compare ``use_replay`` off vs on with batched memory pinned
on; the fleet workloads compare fleet width 1 vs 64 with batched memory
and replay pinned on for both legs; the ``backend`` dimension (opt in
via ``--dimension backend``) compares the plain generated-numpy codegen
backend against the process default (``numpy-opt``, or whatever
``--jit-backend`` pinned) with everything else held at the replay fast
path.  In every cell ``serial_s`` is the slow leg and ``batched_s`` the
fast leg, whatever the toggled dimension.

Every cell also reports the memory-model split (``mem_model_serial_s``
/ ``mem_model_batched_s`` and their share of the corresponding
``kernel_run_s``): the seconds each leg spent simulating the cache
hierarchy from inside compiled kernels, the quantity the vectorized
memory engine exists to shrink.  ``speedup_mem_model`` is their ratio
whenever the fast leg's share is measurable.

Each cell also splits wall-clock into compile and steady-state time:
``steady_serial_s``/``steady_batched_s`` subtract the codegen meter's
kernel-compile seconds from each timed round, and ``speedup_steady``
compares only those — the number :func:`check_regression` gates on,
since compile cost is a one-time warmup charge the kernel cache
amortises away across processes.  Cells where both legs run compiled
kernels additionally carry the kernel-net split
(``kernel_serial_s``/``kernel_batched_s``/``speedup_kernel``): in-kernel
wall time minus the memory-model seconds spent simulating the cache
hierarchy from inside those kernels.  For the ``backend`` dimension the
gates read ``speedup_kernel`` — the hierarchy simulation is shared by
every backend, so only the generated-kernel time carries the codegen
signal.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.align.vectorized.extend_loop import (
    ExtendConsts,
    enter_extend,
    vec_extend,
    vec_step,
)
from repro.align.vectorized.ss_vec import SsVec
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.eval.runner import make_machine, run_implementation
from repro.genomics.datasets import build_dataset
from repro.memory.hierarchy import MemoryHierarchy
from repro.vector.backends import CODEGEN_METER
from repro.vector.fleet import drive_fleet, drive_serial, session_step
from repro.vector.machine import VectorMachine
from repro.vector.program import REPLAY_METER, ReplaySession

#: Default report location (relative to the working directory).
DEFAULT_OUT = "results/BENCH_membatch.json"

#: The service-level workload (``--only serve``): not a two-leg toggle
#: comparison, so it is excluded from the default workload list and
#: produces its own cells via :func:`repro.serve.bench.serve_bench_cells`
#: (committed report: ``results/BENCH_serve.json``).
SERVE_WORKLOAD = "serve"

#: Workload name -> (reps in full mode, reps in --quick mode).
_SCALES = {
    "stride_sweep": (400, 60),
    "random_gather": (600, 90),
    "wfa_extend": (40, 8),
    "fig4_cell": (24, 4),
    "replay_extend": (40, 8),
    "replay_ss": (24, 4),
    "fleet_extend": (20, 5),
    "fleet_fig4": (24, 4),
    "trace_tree": (40, 8),
    "memvec_gather": (600, 90),
}

#: Workload name -> toggled dimension ("membatch" unless listed).
_DIMENSIONS = {
    "replay_extend": "replay",
    "replay_ss": "replay",
    "fleet_extend": "fleet",
    "fleet_fig4": "fleet",
    "trace_tree": "tracetree",
    "memvec_gather": "memvec",
}

#: dimension -> ((slow label, batched, replay, fleet, trees, backend),
#: (fast ...)).  ``trees=None`` leaves ``use_trace_trees`` at its
#: process default so the legacy dimensions keep measuring exactly
#: their own toggle; ``backend=None`` likewise leaves ``jit_backend``
#: at the process default (``numpy-opt`` unless ``--jit-backend``
#: pinned something else), so the ``backend`` dimension's fast leg
#: measures whatever backend the process runs with.
_LEGS = {
    "membatch": (
        ("serial", False, False, 0, None, None),
        ("batched", True, False, 0, None, None),
    ),
    "replay": (
        ("serial", True, False, 0, None, None),
        ("batched", True, True, 0, None, None),
    ),
    # Both fleet legs pin the memory-model engine off: pattern replay
    # accelerates the width-1 fibers' per-machine batches far more than
    # the fused executor's already-vectorized rows, which would fold the
    # hierarchy engine's signal into a measurement whose toggle is the
    # fleet width.  The memvec dimension (and the conformance grid's
    # memvec x fleet axis) covers that interaction.
    "fleet": (
        ("serial", True, True, 1, None, None, False),
        ("batched", True, True, 64, None, None, False),
    ),
    "tracetree": (
        ("serial", True, True, 0, False, None),
        ("batched", True, True, 0, True, None),
    ),
    "backend": (
        ("serial", True, True, 0, None, "numpy"),
        ("batched", True, True, 0, None, None),
    ),
    # Both memvec legs keep the whole fast stack (batched memory,
    # replay, fleet width 64) so the only difference is the memory
    # hierarchy's own engine — serial per-request walk vs phase-split
    # retirement + pattern replay.  The pinned fleet width is inert for
    # single-machine workloads and turns fleet_extend under
    # ``--dimension memvec`` into the fleet-coalescing measurement.
    "memvec": (
        ("serial", True, True, 64, None, None, False),
        ("batched", True, True, 64, None, None, True),
    ),
}


class _PathPin:
    """Context manager pinning the class-wide execution-path defaults."""

    def __init__(
        self,
        batched: bool,
        replay: bool,
        fleet: int = 0,
        trees: "bool | None" = None,
        backend: "str | None" = None,
        memvec: "bool | None" = None,
    ) -> None:
        self.batched = batched
        self.replay = replay
        self.fleet = fleet
        self.trees = trees
        self.backend = backend
        self.memvec = memvec

    def __enter__(self) -> None:
        self._saved = (
            VectorMachine.use_batched_memory,
            VectorMachine.use_replay,
            VectorMachine.use_fleet,
            VectorMachine.use_trace_trees,
            VectorMachine.jit_backend,
            MemoryHierarchy.use_vectorized_memory,
        )
        VectorMachine.use_batched_memory = self.batched
        VectorMachine.use_replay = self.replay
        VectorMachine.use_fleet = self.fleet
        if self.trees is not None:
            VectorMachine.use_trace_trees = self.trees
        if self.backend is not None:
            VectorMachine.jit_backend = self.backend
        if self.memvec is not None:
            MemoryHierarchy.use_vectorized_memory = self.memvec

    def __exit__(self, *exc) -> None:
        VectorMachine.use_batched_memory = self._saved[0]
        VectorMachine.use_replay = self._saved[1]
        VectorMachine.use_fleet = self._saved[2]
        VectorMachine.use_trace_trees = self._saved[3]
        VectorMachine.jit_backend = self._saved[4]
        MemoryHierarchy.use_vectorized_memory = self._saved[5]


class _BatchedPath(_PathPin):
    """Pin only batched memory (replay off so it cannot blur timing)."""

    def __init__(self, enabled: bool) -> None:
        super().__init__(enabled, False)


# ----------------------------------------------------------------------
# Workloads (deterministic: fixed seeds, no wall-clock-dependent state)
# ----------------------------------------------------------------------
def _stride_sweep(reps: int):
    machine = make_machine(SystemConfig())
    data = np.arange(1 << 14, dtype=np.int64)  # 16K x 4B = 64KB
    buf = machine.new_buffer("sweep", data, elem_bytes=4)
    n = len(data)
    lanes = machine.lanes(32)
    for stride in (1, 2, 3, 4, 8, 16):
        span = lanes * stride
        base = 0
        for _ in range(reps):
            idx = machine.iota(32, start=base, step=stride)
            machine.gather(buf, idx, stream_id=11)
            base = (base + span) % (n - span)
    machine.barrier()
    return machine.snapshot()


def _random_gather(reps: int):
    machine = make_machine(SystemConfig())
    rng = np.random.default_rng(1234)
    data = (np.arange(48 << 10) % 251).astype(np.int64)  # 48KB, L1-resident
    buf = machine.new_buffer("rand", data, elem_bytes=1)
    lanes = machine.lanes(8)
    indices = rng.integers(0, len(data), size=(reps, lanes))
    for row in indices:
        idx = machine.from_values(row, 8)
        machine.gather(buf, idx, stream_id=13)
    machine.barrier()
    return machine.snapshot()


def _wfa_extend(reps: int):
    machine = make_machine(SystemConfig())
    rng = np.random.default_rng(7)
    length = 2048
    pattern = rng.integers(0, 4, length).astype(np.int64)
    text = pattern.copy()
    text[::97] = (text[::97] + 1) % 4  # sparse mismatches end each run
    pbuf = machine.new_buffer("bench_p", pattern, elem_bytes=1)
    tbuf = machine.new_buffer("bench_t", text, elem_bytes=1)
    consts = ExtendConsts(machine, length, length, 8)
    lanes = machine.lanes(64)
    for rep in range(reps):
        starts = (rep * 53) % 512 + 17 * np.arange(lanes)
        v = machine.from_values(starts, 64)
        h = machine.from_values(starts, 64)
        vec_extend(
            machine, pbuf, tbuf, v, h, machine.ptrue(64),
            length, length, consts=consts,
        )
    machine.barrier()
    return machine.snapshot()


def _replay_extend(reps: int):
    # Steady-state variant of the extend micro: long exact runs with a
    # small lane stagger, so the loop spends most iterations with every
    # lane active — the common case for WFA extends over near-identical
    # sequences, and the case the recorded-program fast path targets.
    machine = make_machine(SystemConfig())
    rng = np.random.default_rng(7)
    length = 4096
    pattern = rng.integers(0, 4, length).astype(np.int64)
    text = pattern.copy()
    text[::251] = (text[::251] + 1) % 4
    pbuf = machine.new_buffer("bench_p", pattern, elem_bytes=1)
    tbuf = machine.new_buffer("bench_t", text, elem_bytes=1)
    consts = ExtendConsts(machine, length, length, 8)
    lanes = machine.lanes(64)
    for rep in range(reps):
        starts = (rep * 53) % 1024 + 3 * np.arange(lanes)
        v = machine.from_values(starts, 64)
        h = machine.from_values(starts, 64)
        vec_extend(
            machine, pbuf, tbuf, v, h, machine.ptrue(64),
            length, length, consts=consts,
        )
    machine.barrier()
    return machine.snapshot()


class _TTState:
    __slots__ = ("v", "h", "inb")


def _trace_tree(reps: int):
    # Divergence-heavy carried-predicate loop: per-lane retirement
    # bounds are strongly staggered, so after a short all-active prefix
    # the loop spends most iterations with a partially-active predicate
    # — the WFA extend mismatch-tail shape.  The body is pure masked
    # ALU work (no per-iteration memory traffic), so the measurement
    # isolates what the trace trees change: the all-true prefix runs
    # the specialised root, the divergent tail runs the compiled
    # side-exit child, and both run as loop-in-kernel calls instead of
    # one guard + one replay dispatch per iteration.
    machine = make_machine(SystemConfig())
    lanes = machine.lanes(64)
    bounds = machine.from_values(60 + 40 * np.arange(lanes), 64)

    def body(mm, ss):
        step = mm.add(ss.v, 3, pred=ss.inb)
        cap = mm.min(step, bounds, pred=ss.inb)
        gain = mm.sub(cap, ss.v, pred=ss.inb)
        ss.h = mm.add(ss.h, gain, pred=ss.inb)
        ss.v = cap
        ss.inb = mm.cmp("lt", ss.v, bounds, pred=ss.inb)

    session = ReplaySession(machine, body, name="trace-tree-bench")
    for rep in range(reps):
        st = _TTState()
        st.v = machine.from_values((rep * 7) % 19 + np.arange(lanes), 64)
        st.h = machine.from_values(np.zeros(lanes, dtype=np.int64), 64)
        st.inb = machine.ptrue(64)
        session.run_loop(st)
    machine.barrier()
    return machine.snapshot()


_FIG4_DATASETS: dict = {}


def _fig4_cell(reps: int):
    # Dataset synthesis is deterministic and identical on both paths;
    # build it once per rep count so the timed region is alignment only.
    dataset = _FIG4_DATASETS.get(reps)
    if dataset is None:
        dataset = _FIG4_DATASETS[reps] = build_dataset(
            "250bp_1", num_pairs=reps, seed=1234
        )
    impl = SsVec(threshold=dataset.spec.edit_threshold)
    result = run_implementation(impl, dataset.pairs)
    return result.stats()


_SS_DATASETS: dict = {}


def _replay_ss(reps: int):
    dataset = _SS_DATASETS.get(reps)
    if dataset is None:
        dataset = _SS_DATASETS[reps] = build_dataset(
            "250bp_1", num_pairs=reps, seed=4321
        )
    impl = SsVec(threshold=dataset.spec.edit_threshold)
    result = run_implementation(impl, dataset.pairs)
    return result.stats()


#: Vector width for the fleet workloads: the widest SVE configuration
#: the paper targets.  The serial engine's per-lane accounting cost
#: grows with the lane count while the fleet's row-batched accounting
#: does not, so this is the configuration the executor exists for.
_FLEET_VLEN_BITS = 2048

#: Pairs advanced per fleet workload (the fast leg fuses all of them).
_FLEET_PAIRS = 64


def _fleet_fibers(reps: int, count: int, length: int = 4096):
    """Extend-loop fibers for ``count`` independent read-pairs.

    Each pair owns a fresh machine; texts differ per pair (staggered
    mismatch phase) so lanes retire on different iterations across the
    fleet — the per-pair-retirement case, not the trivial lockstep one.
    The fiber body is the single-pair replay path: one
    ``ReplaySession.step`` per extend iteration, exactly as
    ``vec_extend`` executes it inline.
    """
    fibers = []
    rng = np.random.default_rng(7)
    pattern = rng.integers(0, 4, length).astype(np.int64)
    for i in range(count):
        machine = make_machine(SystemConfig(vlen_bits=_FLEET_VLEN_BITS))
        text = pattern.copy()
        off = (13 * i) % 251
        text[off::251] = (text[off::251] + 1) % 4
        pbuf = machine.new_buffer("bench_p", pattern, elem_bytes=1)
        tbuf = machine.new_buffer("bench_t", text, elem_bytes=1)
        consts = ExtendConsts(machine, length, length, 8)
        lanes = machine.lanes(64)

        def fiber(machine=machine, pbuf=pbuf, tbuf=tbuf, consts=consts,
                  lanes=lanes):
            session = ReplaySession(
                machine,
                lambda mm, ss, pbuf=pbuf, tbuf=tbuf, consts=consts: vec_step(
                    mm, pbuf, tbuf, consts, ss
                ),
                name="vec-extend",
            )
            for rep in range(reps):
                starts = (rep * 53) % 1024 + 3 * np.arange(lanes)
                v = machine.from_values(starts, 64)
                h = machine.from_values(starts, 64)
                st = enter_extend(machine, consts, v, h, machine.ptrue(64))
                while machine.ptest_spec(st.inb):
                    yield session_step(session, st)
            machine.barrier()
            return machine.snapshot()

        fibers.append(fiber())
    return fibers


def _fleet_extend(reps: int):
    fibers = _fleet_fibers(reps, _FLEET_PAIRS)
    width = int(getattr(VectorMachine, "use_fleet", 0) or 0)
    if width >= 2:
        out = []
        for lo in range(0, len(fibers), width):
            out.extend(drive_fleet(fibers[lo : lo + width]))
        return out
    return [drive_serial(f) for f in fibers]


_FLEET_FIG4_DATASETS: dict = {}


def _fleet_fig4(reps: int):
    # Same shape as _fig4_cell, but through the fleet entry point of
    # run_implementation: the pinned VectorMachine.use_fleet picks the
    # width, and fleet >= 1 always means one fresh machine per pair, so
    # the per-pair results of both legs are comparable (and must match).
    dataset = _FLEET_FIG4_DATASETS.get(reps)
    if dataset is None:
        dataset = _FLEET_FIG4_DATASETS[reps] = build_dataset(
            "250bp_1", num_pairs=reps, seed=1234
        )
    impl = SsVec(threshold=dataset.spec.edit_threshold)
    result = run_implementation(
        impl, dataset.pairs,
        system=SystemConfig(vlen_bits=_FLEET_VLEN_BITS),
    )
    return result.pair_results


def _memvec_gather(reps: int):
    # A small rotation of base offsets over an L1-resident buffer: the
    # same eight (base-in-line offset, entry stride, delta stream) keys
    # recur every lap, so after one warmup lap the pattern-memoization
    # layer replays every batch closed-form.  The serial leg walks the
    # identical batches request by request — the cell isolates the
    # hierarchy engine itself.  Byte gathers at the widest lane count
    # (64 lanes of 8-bit elements) make each batch a full-length scalar
    # walk on the serial leg while the replay commit stays a few distinct
    # lines.
    machine = make_machine(SystemConfig())
    data = (np.arange(32 << 10) % 251).astype(np.int64)  # 32KB, L1-resident
    buf = machine.new_buffer("memvec", data, elem_bytes=1)
    lanes = machine.lanes(8)
    span = 2 * lanes
    for rep in range(reps):
        idx = machine.iota(8, start=(rep % 8) * span, step=2)
        machine.gather(buf, idx, stream_id=17)
    machine.barrier()
    return machine.snapshot()


_WORKLOADS = {
    "stride_sweep": _stride_sweep,
    "random_gather": _random_gather,
    "wfa_extend": _wfa_extend,
    "fig4_cell": _fig4_cell,
    # The replay workloads run the same kernels with the toggled
    # dimension flipped to interpreted vs recorded-program execution.
    "replay_extend": _replay_extend,
    "replay_ss": _replay_ss,
    # The fleet workloads run fleet width 1 vs 64 (per-pair fibers vs
    # the fused cross-pair executor), batched memory and replay on.
    "fleet_extend": _fleet_extend,
    "fleet_fig4": _fleet_fig4,
    # The trace-tree workload runs replay-without-trees vs the tiered
    # trace-tree JIT on a divergence-heavy extend loop.
    "trace_tree": _trace_tree,
    # The memvec workload runs the serial per-request hierarchy walk vs
    # the vectorized memory-model engine (pattern replay) on a
    # repeated-pattern gather stream.
    "memvec_gather": _memvec_gather,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _measure(workload, reps: int, rounds: int = 3, dimension: str = "membatch"):
    """Time one workload on both legs; returns the comparison dict.

    Both legs are warmed first (``warmup_s`` covers that pass, which
    absorbs kernel compiles, calibration-cache loads, and numpy's lazy
    imports), then timed in alternating rounds (serial, batched,
    serial, ...) keeping the best time per leg — interleaving cancels
    slow machine-load drift that would otherwise bias whichever leg ran
    last, and the minimum is the least noise-contaminated sample.
    Within each timed round the codegen meter's kernel-compile seconds
    are subtracted out to give the steady-state times
    (``steady_*_s``/``speedup_steady``) alongside the raw wall-clock
    ones.  ``dimension`` picks which toggle the legs differ in.

    When both legs spend measurable time inside compiled kernels the
    cell additionally reports the *kernel-net* split: per leg, the
    replay meter's in-kernel seconds minus the memory-model seconds
    spent simulating the cache hierarchy inside those kernels — the
    time attributable to the generated code itself.
    ``speedup_kernel`` is their ratio, the number that isolates what a
    codegen backend changed (the hierarchy simulation is shared by all
    backends and would otherwise dilute it).
    """
    legs = _LEGS[dimension]
    warm_start = time.perf_counter()
    for leg in legs:
        with _PathPin(*leg[1:]):
            workload(max(1, reps // 8))  # warm code paths and caches
    warmup_s = time.perf_counter() - warm_start
    timings = {}
    steady = {}
    kernel_net = {}
    mem_model = {}
    kernel_run = {}
    stats = {}
    compile_total = 0.0
    for _ in range(rounds):
        for leg in legs:
            label = leg[0]
            with _PathPin(*leg[1:]):
                compile_before = CODEGEN_METER.compile_s
                meter_before = REPLAY_METER.snapshot()
                start = time.perf_counter()
                stats[label] = workload(reps)
                elapsed = time.perf_counter() - start
                compiled = max(0.0, CODEGEN_METER.compile_s - compile_before)
                meter = REPLAY_METER.delta(meter_before)
            compile_total += compiled
            steady_elapsed = max(elapsed - compiled, 1e-9)
            knet = meter["kernel_run_s"] - meter["mem_model_s"]
            if label not in timings or elapsed < timings[label]:
                timings[label] = elapsed
            if label not in steady or steady_elapsed < steady[label]:
                steady[label] = steady_elapsed
            if label not in kernel_net or knet < kernel_net[label]:
                kernel_net[label] = knet
            # Keep the mem-model seconds and the kernel seconds from
            # the same (best) round so the reported share is internally
            # consistent.
            if label not in mem_model or meter["mem_model_s"] < mem_model[label]:
                mem_model[label] = meter["mem_model_s"]
                kernel_run[label] = meter["kernel_run_s"]
    cell = {
        "dimension": dimension,
        "serial_s": round(timings["serial"], 4),
        "batched_s": round(timings["batched"], 4),
        "speedup": round(timings["serial"] / max(timings["batched"], 1e-9), 3),
        "warmup_s": round(warmup_s, 4),
        "compile_s": round(compile_total, 4),
        "steady_serial_s": round(steady["serial"], 4),
        "steady_batched_s": round(steady["batched"], 4),
        "speedup_steady": round(
            steady["serial"] / max(steady["batched"], 1e-9), 3
        ),
        "stats_identical": stats["serial"] == stats["batched"],
        # Per-leg memory-model seconds and their share of the in-kernel
        # seconds — the quantity the vectorized memory engine shrinks.
        "mem_model_serial_s": round(mem_model["serial"], 4),
        "mem_model_batched_s": round(mem_model["batched"], 4),
        "mem_model_share_serial": round(
            mem_model["serial"] / kernel_run["serial"], 3
        )
        if kernel_run["serial"] > 1e-9
        else 0.0,
        "mem_model_share_batched": round(
            mem_model["batched"] / kernel_run["batched"], 3
        )
        if kernel_run["batched"] > 1e-9
        else 0.0,
    }
    if mem_model["batched"] > 1e-4:
        cell["speedup_mem_model"] = round(
            mem_model["serial"] / mem_model["batched"], 3
        )
    # The kernel-net split only means something when both legs actually
    # ran compiled kernels (an interpreted or meter-resetting leg shows
    # ~0 or garbage) — degenerate cells simply omit the keys.
    if kernel_net["serial"] > 1e-4 and kernel_net["batched"] > 1e-4:
        cell["kernel_serial_s"] = round(kernel_net["serial"], 4)
        cell["kernel_batched_s"] = round(kernel_net["batched"], 4)
        cell["speedup_kernel"] = round(
            kernel_net["serial"] / kernel_net["batched"], 3
        )
    return cell


def run_bench(
    quick: bool = False,
    out: "str | os.PathLike | None" = DEFAULT_OUT,
    only: "list[str] | None" = None,
    dimension: "str | None" = None,
) -> dict:
    """Run the micro-workloads; returns (and optionally writes) the report.

    ``quick`` shrinks every workload's repetition count (the CI smoke
    setting); ``only`` restricts to a subset of workload names;
    ``dimension`` overrides every selected workload's toggled dimension
    (``--dimension backend`` reruns e.g. replay_extend as plain
    generated-numpy vs the process-default backend).
    """
    names = list(_WORKLOADS) if not only else list(only)
    unknown = [n for n in names if n not in _WORKLOADS and n != SERVE_WORKLOAD]
    if unknown:
        raise ReproError(
            f"unknown bench workload(s) {', '.join(unknown)}; "
            f"choose from {', '.join(_WORKLOADS)}, {SERVE_WORKLOAD}"
        )
    if dimension is not None and dimension not in _LEGS:
        raise ReproError(
            f"unknown bench dimension {dimension!r}; "
            f"choose from {', '.join(sorted(_LEGS))}"
        )
    report = {
        "version": __version__,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "note": (
            "serial = the slow leg of each workload's dimension "
            "(per-lane walk, interpreted execution, or fleet width 1); "
            "batched = the fast leg (access_batch, replay, or fleet "
            "width 64); both legs are checked for bit-identical "
            "statistics"
        ),
        "workloads": {},
    }
    for name in names:
        if name == SERVE_WORKLOAD:
            # Service-level workload: not a two-leg toggle comparison,
            # so it bypasses _measure and contributes its own cells
            # (serve_open / serve_sat), shaped for the same render,
            # identity, and regression machinery.
            from repro.serve.bench import serve_bench_cells

            report["workloads"].update(serve_bench_cells(quick=quick))
            continue
        reps = _SCALES[name][1 if quick else 0]
        report["workloads"][name] = {
            "reps": reps,
            **_measure(
                _WORKLOADS[name], reps,
                dimension=dimension or _DIMENSIONS.get(name, "membatch"),
            ),
        }
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
        report["path"] = str(path)
    return report


def check_report(report: dict, gate: str = "stride_sweep") -> "list[str]":
    """CI gate: failures if stats diverge or a gated workload regressed.

    Every replay-dimension workload in the report is gated on speedup in
    addition to ``gate`` — the replay engine must never make a routed
    loop slower than interpreting it.  Of the fleet workloads only
    ``fleet_extend`` is speed-gated: it measures the fused kernel
    itself.  ``fleet_fig4`` is end to end, where short-read cells are
    Amdahl-limited by per-pair work outside the fused blocks — its
    contract is bit-identical per-pair results at any fleet width, so
    it is gated on identity only.
    """
    failures = []
    for name, cell in report["workloads"].items():
        if not cell["stats_identical"]:
            failures.append(
                f"{name}: batched path diverged from serial statistics"
            )
    gated_names = [gate] + sorted(
        name
        for name, cell in report["workloads"].items()
        if (
            cell.get("dimension") in ("replay", "tracetree", "backend", "memvec")
            or name == "fleet_extend"
        )
        and name != gate
    )
    for name in gated_names:
        cell = report["workloads"].get(name)
        if cell is None:
            continue
        # Gate on the steady-state ratio when the report carries it:
        # compile time is a warmup charge, not a regression.  Backend
        # cells gate on the kernel-net ratio instead — both legs run
        # the same shared simulator, so only the generated-kernel time
        # carries the backend's signal.
        if cell.get("dimension") == "backend" and "speedup_kernel" in cell:
            speedup = cell["speedup_kernel"]
        else:
            speedup = cell.get("speedup_steady", cell["speedup"])
        if speedup < 1.0:
            failures.append(
                f"{name}: batched path slower than serial "
                f"({cell['batched_s']}s vs {cell['serial_s']}s, "
                f"gated speedup {speedup}x)"
            )
    return failures


def check_regression(
    report: dict, baseline: dict, tolerance: float = 0.10
) -> "list[str]":
    """CI gate: speedups must not regress beyond ``tolerance`` relative
    to a committed baseline report (``results/BENCH_*.json``).

    Only workloads present in both reports are compared; a fresh
    workload with no committed reference cannot fail this gate.  Quick
    runs use smaller repetition counts than the committed full runs, so
    warmup weighs more and speedups land lower — the floor scale is
    therefore *direction-aware*: a quick report judged against a full
    baseline loosens the floor by 0.6 (calibrated against the observed
    quick/full ratio for fleet_extend, with noise headroom), while a
    full report judged against a quick baseline tightens it by the
    same factor (the full run should beat the warmup-dominated quick
    number, not hide behind it).
    """
    failures = []
    base = baseline.get("workloads", {})
    rq = bool(report.get("quick"))
    bq = bool(baseline.get("quick"))
    if rq == bq:
        scale = 1.0
    elif rq:  # quick report vs full baseline: loosen the floor
        scale = 0.6
    else:  # full report vs quick baseline: tighten the floor
        scale = 1.0 / 0.6
    for name, cell in report["workloads"].items():
        ref = base.get(name)
        if ref is None:
            continue
        # Compare steady-state speedups when both reports carry them —
        # compile time varies with the kernel-cache temperature and
        # would otherwise dominate the quick-mode ratio.  Backend cells
        # compare kernel-net speedups for the same reason check_report
        # gates them on it.
        if "speedup_kernel" in cell and "speedup_kernel" in ref:
            key = "speedup_kernel"
        elif "speedup_steady" in cell and "speedup_steady" in ref:
            key = "speedup_steady"
        else:
            key = "speedup"
        floor = ref[key] * (1.0 - tolerance) * scale
        if cell[key] < floor:
            failures.append(
                f"{name}: {key} {cell[key]}x regressed more than "
                f"{tolerance:.0%} below the committed {ref[key]}x "
                f"(floor {floor:.2f}x)"
            )
    return failures


def render_report(report: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"membatch bench (v{report['version']}, "
        f"{'quick' if report['quick'] else 'full'}):",
        f"{'workload':<16} {'reps':>5} {'serial':>9} {'batched':>9} "
        f"{'speedup':>8} {'steady':>8}  stats",
    ]
    for name, cell in report["workloads"].items():
        dim = cell.get("dimension")
        tag = (
            f" ({dim})"
            if dim in ("replay", "fleet", "backend", "memvec", "serve")
            else ""
        )
        if dim == "serve":
            tag += (
                f" [{cell.get('served_aps', 0)}/{cell.get('offered_aps', 0)} "
                f"aps, p50 {cell.get('p50_ms', 0):.0f}ms "
                f"p99 {cell.get('p99_ms', 0):.0f}ms]"
            )
        kernel = cell.get("speedup_kernel")
        if kernel is not None:
            tag += f" [kernel {kernel:.2f}x]"
        mem = cell.get("speedup_mem_model")
        if mem is not None:
            tag += f" [mem {mem:.2f}x]"
        steady = cell.get("speedup_steady")
        steady_txt = f"{steady:>7.2f}x" if steady is not None else f"{'-':>8}"
        lines.append(
            f"{name:<16} {cell['reps']:>5} {cell['serial_s']:>8.3f}s "
            f"{cell['batched_s']:>8.3f}s {cell['speedup']:>7.2f}x "
            f"{steady_txt}  "
            f"{'identical' if cell['stats_identical'] else 'DIVERGED'}{tag}"
        )
    if "path" in report:
        lines.append(f"[wrote {report['path']}]")
    return "\n".join(lines)


def profile_bench(
    top: int = 20, quick: bool = True, only: "list[str] | None" = None
) -> str:
    """Run each workload once under cProfile; return the top-N report.

    Workloads execute a single rep-scaled pass pinned to the fast leg
    of their own dimension (batched memory and replay on; fleet width
    64 for the fleet workloads) — the point is to see where simulator
    time goes, not to compare legs.
    """
    import cProfile
    import io
    import pstats

    names = list(_WORKLOADS) if not only else list(only)
    unknown = [n for n in names if n not in _WORKLOADS]
    if unknown:
        raise ReproError(
            f"unknown bench workload(s) {', '.join(unknown)}; "
            f"choose from {', '.join(_WORKLOADS)}"
        )
    chunks = []
    for name in names:
        reps = _SCALES[name][1 if quick else 0]
        profiler = cProfile.Profile()
        fast_leg = _LEGS[_DIMENSIONS.get(name, "membatch")][1]
        with _PathPin(*fast_leg[1:]):
            profiler.enable()
            _WORKLOADS[name](reps)
            profiler.disable()
        sink = io.StringIO()
        stats = pstats.Stats(profiler, stream=sink)
        stats.sort_stats("cumulative").print_stats(top)
        chunks.append(f"== {name} ({reps} reps) ==\n{sink.getvalue().rstrip()}")
    return "\n\n".join(chunks)
