"""Diff two emitted result records and flag drift beyond tolerances.

``python -m repro compare BASELINE.json CURRENT.json`` turns the
``results/*.json`` files written by ``--emit-json`` into an enforced
perf trajectory: cycle counts, instruction counts, cache hit rates,
prefetch accuracy, and DRAM traffic are compared per experiment cell,
and any drift beyond the configured tolerance is reported (and fails
CI).  A record always compares clean against itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Metrics compared with a *relative* tolerance, as
#: (record path inside a machine entry, tolerance attribute).
_RELATIVE_METRICS = (
    (("cycles",), "cycles"),
    (("total_instructions",), "instructions"),
    (("mem", "requests"), "requests"),
    (("mem", "dram_bytes"), "dram"),
)

#: Metrics compared with an *absolute* tolerance (rates in [0, 1]).
_ABSOLUTE_METRICS = (
    (("mem", "l1", "hit_rate"), "hit_rate"),
    (("mem", "l2", "hit_rate"), "hit_rate"),
    (("mem", "l1", "prefetch_accuracy"), "hit_rate"),
    (("mem", "l2", "prefetch_accuracy"), "hit_rate"),
)


@dataclass(frozen=True)
class Tolerances:
    """Maximum allowed drift per metric family.

    ``cycles``/``instructions``/``requests``/``dram`` are relative
    (fraction of the baseline value); ``hit_rate`` is absolute (the
    rates live in [0, 1], where a relative test would explode near 0).
    """

    cycles: float = 0.02
    instructions: float = 0.02
    requests: float = 0.02
    dram: float = 0.05
    hit_rate: float = 0.01

    def __post_init__(self) -> None:
        for name in ("cycles", "instructions", "requests", "dram", "hit_rate"):
            if getattr(self, name) < 0:
                raise ReproError(f"tolerance {name} must be non-negative")


@dataclass(frozen=True)
class Drift:
    """One metric that moved beyond its tolerance."""

    location: str
    metric: str
    baseline: float
    current: float
    delta: float
    tolerance: float
    kind: str = "relative"

    def describe(self) -> str:
        unit = "%" if self.kind == "relative" else ""
        scale = 100.0 if self.kind == "relative" else 1.0
        return (
            f"{self.location}: {self.metric} {self.baseline:g} -> "
            f"{self.current:g} (drift {self.delta * scale:+.2f}{unit or ' abs'}, "
            f"tolerance {self.tolerance * scale:.2f}{unit or ' abs'})"
        )


def _dig(record: dict, path: "tuple[str, ...]"):
    node = record
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _relative_delta(baseline: float, current: float) -> float:
    if baseline == current:
        return 0.0
    if baseline == 0:
        return float("inf")
    return (current - baseline) / abs(baseline)


def compare_machines(
    baseline: dict, current: dict, tol: Tolerances
) -> "list[Drift]":
    """Compare the ``machines`` sections of two records."""
    drifts: "list[Drift]" = []
    base_machines = baseline.get("machines") or {}
    cur_machines = current.get("machines") or {}
    for name in sorted(set(base_machines) | set(cur_machines)):
        if name not in cur_machines:
            drifts.append(
                Drift(name, "missing-in-current", 1.0, 0.0, float("inf"), 0.0)
            )
            continue
        if name not in base_machines:
            drifts.append(
                Drift(name, "missing-in-baseline", 0.0, 1.0, float("inf"), 0.0)
            )
            continue
        base, cur = base_machines[name], cur_machines[name]
        for path, tol_name in _RELATIVE_METRICS:
            b, c = _dig(base, path), _dig(cur, path)
            if b is None:
                # Metric absent from the baseline: tolerated, so new
                # metrics can be introduced without regenerating every
                # committed baseline.
                continue
            if c is None:
                # Baseline lists a metric the candidate lacks: that is a
                # gate failure, never a silent pass.
                drifts.append(
                    Drift(
                        name, "/".join(path) + ":missing-in-current",
                        float(b), float("nan"), float("inf"), 0.0,
                    )
                )
                continue
            delta = _relative_delta(float(b), float(c))
            allowed = getattr(tol, tol_name)
            if abs(delta) > allowed:
                drifts.append(
                    Drift(name, "/".join(path), float(b), float(c), delta, allowed)
                )
        for path, tol_name in _ABSOLUTE_METRICS:
            b, c = _dig(base, path), _dig(cur, path)
            if b is None:
                continue
            if c is None:
                drifts.append(
                    Drift(
                        name, "/".join(path) + ":missing-in-current",
                        float(b), float("nan"), float("inf"), 0.0,
                        kind="absolute",
                    )
                )
                continue
            delta = float(c) - float(b)
            allowed = getattr(tol, tol_name)
            if abs(delta) > allowed:
                drifts.append(
                    Drift(
                        name,
                        "/".join(path),
                        float(b),
                        float(c),
                        delta,
                        allowed,
                        kind="absolute",
                    )
                )
    return drifts


def compare_rows(
    baseline: dict, current: dict, tol: Tolerances
) -> "list[Drift]":
    """Compare the rendered table rows (numeric cells, relative)."""
    drifts: "list[Drift]" = []
    base_rows = baseline.get("rows") or []
    cur_rows = current.get("rows") or []
    if len(base_rows) != len(cur_rows):
        drifts.append(
            Drift(
                "rows",
                "row-count",
                float(len(base_rows)),
                float(len(cur_rows)),
                float("inf"),
                0.0,
            )
        )
        return drifts
    for i, (brow, crow) in enumerate(zip(base_rows, cur_rows)):
        for col in brow:
            b, c = brow[col], crow.get(col)
            if isinstance(b, bool) or not isinstance(b, (int, float)):
                if b != c:
                    drifts.append(
                        Drift(f"rows[{i}]", col, float("nan"), float("nan"),
                              float("inf"), 0.0)
                    )
                continue
            if not isinstance(c, (int, float)) or isinstance(c, bool):
                drifts.append(
                    Drift(f"rows[{i}]", col, float(b), float("nan"),
                          float("inf"), 0.0)
                )
                continue
            delta = _relative_delta(float(b), float(c))
            if abs(delta) > tol.cycles:
                drifts.append(
                    Drift(f"rows[{i}]", col, float(b), float(c), delta, tol.cycles)
                )
    return drifts


def compare_records(
    baseline: dict,
    current: dict,
    tol: "Tolerances | None" = None,
    include_rows: bool = True,
) -> "list[Drift]":
    """Full record diff; returns every out-of-tolerance metric."""
    tol = tol or Tolerances()
    if baseline.get("experiment") != current.get("experiment"):
        raise ReproError(
            f"records are from different experiments: "
            f"{baseline.get('experiment')!r} vs {current.get('experiment')!r}"
        )
    drifts = compare_machines(baseline, current, tol)
    if include_rows:
        drifts.extend(compare_rows(baseline, current, tol))
    return drifts


def render_drifts(drifts: "list[Drift]", baseline_name: str, current_name: str) -> str:
    """Human-readable comparison report."""
    if not drifts:
        return f"OK: {current_name} matches {baseline_name} within tolerances"
    lines = [
        f"DRIFT: {len(drifts)} metric(s) moved beyond tolerance "
        f"({baseline_name} -> {current_name}):"
    ]
    lines.extend(f"  {d.describe()}" for d in drifts)
    return "\n".join(lines)
