"""Schema-versioned, machine-readable experiment result records.

Every experiment table the CLI can render can also be *emitted* as a
JSON record (``--emit-json``) or a CSV of its rows (``--emit-csv``).  A
record carries the rendered rows **plus** the per-cell machine
statistics — :meth:`repro.vector.stats.MachineStats.breakdown`, cache
hit rates, prefetch accuracy, DRAM traffic — captured as the experiment
runs, so ``results/*.json`` files are diffable perf artifacts
(:mod:`repro.eval.compare`) rather than write-only tables.

Capture piggybacks on the evaluation funnel: :func:`capture` installs a
collector, :func:`note_run` (called by
:func:`repro.eval.parallel.evaluate_units` in the parent process) feeds
it one :class:`~repro.eval.runner.RunResult` per work unit, and shards
sharing a cell key are merged in plan order.
"""

from __future__ import annotations

import csv
import json
from contextlib import contextmanager
from pathlib import Path

from repro._version import __version__
from repro.errors import ReproError

#: Version of the record layout; bump on any shape change so
#: ``repro compare`` can refuse cross-schema diffs.
SCHEMA_VERSION = 1

#: The ``kind`` tag stamped on every emitted record.
RECORD_KIND = "repro.result"

#: The ``kind`` tag of supervised-run reports (``repro.eval.supervise``).
RUN_REPORT_KIND = "repro.run_report"


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------
def cache_level_record(stats) -> dict:
    """JSON-ready counters for one cache level (:class:`CacheStats`)."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "accesses": stats.accesses,
        "hit_rate": stats.hit_rate,
        "evictions": stats.evictions,
        "prefetch_fills": stats.prefetch_fills,
        "prefetch_hits": stats.prefetch_hits,
        "prefetch_accuracy": stats.prefetch_accuracy,
    }


def memory_record(mem) -> dict:
    """JSON-ready hierarchy statistics (:class:`MemoryStats`)."""
    return {
        "requests": mem.requests,
        "l1": cache_level_record(mem.l1),
        "l2": cache_level_record(mem.l2),
        "dram_accesses": mem.dram_accesses,
        "dram_bytes": mem.dram_bytes,
    }


def machine_record(stats) -> dict:
    """JSON-ready machine statistics (:class:`MachineStats`)."""
    return {
        "cycles": stats.cycles,
        "total_instructions": stats.total_instructions,
        "instructions": dict(stats.instructions),
        "busy": dict(stats.busy),
        "stall": dict(stats.stall),
        "breakdown": stats.breakdown(),
        "mem": memory_record(stats.mem),
        "qz_reads": stats.qz_reads,
        "qz_writes": stats.qz_writes,
    }


def experiment_record(
    name: str,
    title: str,
    rows: "list[dict]",
    *,
    scale: "float | None" = None,
    jobs: int = 1,
    machines: "dict[str, dict] | None" = None,
    trace: "dict | None" = None,
) -> dict:
    """Assemble one emit-ready result record."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": RECORD_KIND,
        "version": __version__,
        "experiment": name,
        "title": title,
        "params": {"scale": scale, "jobs": jobs},
        "rows": [dict(r) for r in rows],
        "machines": machines or {},
        "trace": trace,
    }


def run_report_record(report) -> dict:
    """Emit-ready record for a supervised run's :class:`RunReport`.

    Shares the result-record envelope (schema version, kind, version) so
    the same tooling can route both; the body is the per-unit
    supervision outcome plus run-level aggregates.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": RUN_REPORT_KIND,
        "version": __version__,
        "run_id": report.run_id,
        "degraded": report.degraded,
        "wall_seconds": report.wall_seconds,
        "units_total": len(report.units),
        "units_restored": report.restored,
        "units_computed": report.computed,
        "units_failed": report.failed,
        "total_retries": report.total_retries,
        "units": [u.to_record() for u in report.units],
    }


# ----------------------------------------------------------------------
# Stats capture (fed by the evaluation funnel)
# ----------------------------------------------------------------------
def _key_str(key) -> str:
    """Stable string form of an experiment cell key."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


class StatsCapture:
    """Accumulates per-cell machine statistics during one experiment."""

    def __init__(self) -> None:
        self._stats: "dict[str, object]" = {}

    def add(self, key, run_result) -> None:
        """Fold one unit's statistics in (shards merge under their key)."""
        name = _key_str(key)
        stats = run_result.stats()
        existing = self._stats.get(name)
        if existing is None:
            self._stats[name] = stats
        else:
            existing.merge_(stats)

    def machine_records(self) -> "dict[str, dict]":
        return {name: machine_record(s) for name, s in self._stats.items()}


_ACTIVE: "list[StatsCapture]" = []


@contextmanager
def capture():
    """Collect machine statistics from every unit evaluated inside."""
    collector = StatsCapture()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)


def note_run(key, run_result) -> None:
    """Report one evaluated unit to the innermost active capture."""
    if _ACTIVE:
        _ACTIVE[-1].add(key, run_result)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def write_json(record: dict, path: "str | Path") -> Path:
    """Write a record as pretty JSON; creates parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def read_json(path: "str | Path") -> dict:
    """Load a result record, validating kind and schema version."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(f"no such result file: {path}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"not a JSON result file: {path} ({exc})")
    if not isinstance(record, dict) or record.get("kind") != RECORD_KIND:
        raise ReproError(f"not a {RECORD_KIND} record: {path}")
    if record.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"schema version mismatch in {path}: "
            f"{record.get('schema_version')} != {SCHEMA_VERSION}"
        )
    return record


def write_csv(rows: "list[dict]", path: "str | Path") -> Path:
    """Write experiment rows as CSV (columns: union, first-seen order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: "list[str]" = []
    for row in rows:
        for col in row:
            if col not in columns:
                columns.append(col)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
