"""Fault-tolerant, resumable work-unit execution for experiment sweeps.

The plain engine in :mod:`repro.eval.parallel` is fail-fast: one
poisoned worker, OOM-killed process, or hung unit aborts an entire
Fig. 13/14-style sweep and throws away every simulated cycle already
spent.  This module layers a *supervisor* under
:func:`repro.eval.parallel.evaluate_units` that makes long campaigns
operable:

* **Checkpointing.**  Every completed :class:`~repro.eval.parallel.WorkUnit`
  result is appended to a journal under ``.repro_cache/runs/<run_id>/``.
  An interrupted sweep resumes with ``python -m repro run --resume
  <run_id>`` (or ``--resume`` on the original command line) and only
  recomputes the units the journal does not already hold.  Units are
  identified by a content fingerprint — implementation, configuration,
  dataset pairs, repro version — so a stale or foreign journal entry can
  never be silently reused.
* **Retry and crash classification.**  Each unit runs in its own worker
  process with a per-unit timeout; a worker that exits on a signal, dies
  with a non-zero exit code, raises, or hangs is classified
  (``signal:SIGKILL``, ``exit:3``, ``exception:...``, ``timeout``) and
  the unit is re-dispatched to a fresh worker with exponential backoff,
  up to a bounded retry budget.
* **Graceful degradation.**  If workers keep dying (infrastructure
  failure rather than a bad unit), the supervisor stops trusting the
  pool and finishes the remaining units serially in-process.
* **Reporting.**  A structured :class:`RunReport` — attempts, retries,
  classifications, degradations, wall time per unit — is written to the
  run directory via the :mod:`repro.eval.records` schema.
* **Deterministic fault injection.**  ``REPRO_FAULT_PLAN`` (or CLI
  ``--fault-plan``) kills, hangs, or exception-poisons chosen units on
  chosen attempts, so every recovery path above is exercised in CI
  rather than discovered in production.

Execution semantics are unchanged: a unit always runs on a fresh
machine, exactly like the plain engine, so a supervised sweep (resumed
or not) produces bit-identical results to an unsupervised one.
"""

from __future__ import annotations

import base64
import heapq
import json
import os
import pickle
import signal
import time
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

from repro._version import __version__
from repro.errors import FaultAbort, ReproError, SupervisionError
from repro.eval import records, timing
from repro.eval.runner import RunResult

#: Environment override for the fault plan (CLI ``--fault-plan``).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: How long an injected ``hang`` fault sleeps inside a worker; the
#: supervisor's per-unit timeout is what actually ends it.
HANG_SECONDS = 3600.0

#: Journal entry schema version (bump on any layout change).
JOURNAL_VERSION = 1


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
_FAULT_ACTIONS = ("kill", "hang", "raise")


class InjectedFault(ReproError):
    """Exception raised by a ``raise`` fault inside a unit."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for supervised runs.

    The spec grammar is ``ORDINAL:ACTION[@ATTEMPT]``, comma-separated::

        2:kill          kill the worker running unit 2, every attempt
        2:kill@0        kill only the first attempt (retries succeed)
        5:hang@1        hang the second attempt of unit 5
        0:raise         poison unit 0 with an exception, every attempt

    ``ORDINAL`` is the unit's position in overall plan order (across
    every ``evaluate_units`` call of the run).  ``kill`` sends the
    worker SIGKILL (simulating an OOM kill), ``hang`` sleeps past any
    timeout, ``raise`` raises :class:`InjectedFault` inside the unit.
    In-process serial execution (``jobs=1``) has no worker to kill, so
    ``kill``/``hang`` there abort the whole run via
    :class:`~repro.errors.FaultAbort` — simulating the operator's
    process dying — while ``raise`` stays retryable.  After pool
    degradation, ``kill``/``hang`` faults are ignored (the worker they
    target is exactly what the fallback no longer has).
    """

    entries: "tuple[tuple[int, str, int | None], ...]" = ()

    @classmethod
    def parse(cls, spec: "str | None") -> "FaultPlan | None":
        """Parse a spec string; ``None``/empty means no plan."""
        if not spec or not spec.strip():
            return None
        entries = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                ordinal_s, action = part.split(":", 1)
                attempt: "int | None" = None
                if "@" in action:
                    action, attempt_s = action.split("@", 1)
                    attempt = int(attempt_s)
                ordinal = int(ordinal_s)
            except ValueError:
                raise ReproError(f"malformed fault-plan entry: {part!r}")
            if action not in _FAULT_ACTIONS:
                raise ReproError(
                    f"unknown fault action {action!r} in {part!r}; "
                    f"choose from {', '.join(_FAULT_ACTIONS)}"
                )
            if ordinal < 0 or (attempt is not None and attempt < 0):
                raise ReproError(f"negative fault-plan ordinal: {part!r}")
            entries.append((ordinal, action, attempt))
        return cls(tuple(entries)) if entries else None

    def to_spec(self) -> str:
        """Round-trip the plan back to its spec string."""
        parts = []
        for ordinal, action, attempt in self.entries:
            suffix = "" if attempt is None else f"@{attempt}"
            parts.append(f"{ordinal}:{action}{suffix}")
        return ",".join(parts)

    def lookup(self, ordinal: int, attempt: int) -> "str | None":
        """The fault to inject for this (unit ordinal, attempt), if any."""
        for entry_ordinal, action, entry_attempt in self.entries:
            if entry_ordinal == ordinal and (
                entry_attempt is None or entry_attempt == attempt
            ):
                return action
        return None


def _trigger_in_worker(action: "str | None") -> None:  # pragma: no cover
    """Carry out a fault inside a worker process (invisible to coverage)."""
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(HANG_SECONDS)
    elif action == "raise":
        raise InjectedFault("injected exception fault")


# ----------------------------------------------------------------------
# Unit fingerprints
# ----------------------------------------------------------------------
def _scrub(text: str) -> str:
    """Drop memory addresses from reprs so fingerprints are stable."""
    out = []
    i = 0
    while True:
        j = text.find(" at 0x", i)
        if j < 0:
            out.append(text[i:])
            return "".join(out)
        out.append(text[i:j])
        k = j + len(" at 0x")
        while k < len(text) and text[k] in "0123456789abcdefABCDEF":
            k += 1
        i = k


def unit_fingerprint(unit) -> str:
    """Stable content digest identifying one work unit's computation.

    Covers everything that determines the unit's result: the repro
    version, the implementation (class + constructor state), the
    system/QUETZAL configuration, the shard coordinates, and the
    sequence pairs themselves.  A fingerprint mismatch is always safe —
    it only means the unit is recomputed instead of restored.
    """
    impl = unit.impl
    digest = sha256()
    for chunk in (
        __version__,
        repr(unit.key),
        f"{impl.__class__.__module__}.{impl.__class__.__qualname__}",
        impl.name,
        _scrub(repr(sorted(vars(impl).items()))),
        _scrub(repr(unit.system)),
        _scrub(repr(unit.quetzal)),
        f"{unit.shard_index}/{unit.num_shards}",
    ):
        digest.update(chunk.encode("utf-8"))
        digest.update(b"\x00")
    for pair in unit.pairs:
        digest.update(str(pair.pattern).encode("utf-8"))
        digest.update(b"\x01")
        digest.update(str(pair.text).encode("utf-8"))
        digest.update(b"\x01")
        digest.update(str(pair.edits_applied).encode("utf-8"))
        digest.update(b"\x02")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
def runs_root() -> Path:
    """Directory holding per-run checkpoint state.

    Lives next to the calibration entries under the configured cache
    directory (``REPRO_CACHE_DIR`` / ``.repro_cache``), whether or not
    the calibration disk layer itself is enabled.
    """
    from repro.cache import cache_root

    return cache_root() / "runs"


class RunJournal:
    """Append-only checkpoint journal for one run.

    The on-disk format is JSON Lines (``journal.jsonl``): one object per
    completed unit with the entry version, the unit fingerprint, a
    base64-encoded pickle of its :class:`~repro.eval.runner.RunResult`,
    and a CRC-32 of the raw pickle bytes.  Entries are self-validating:
    a truncated, garbled, or checksum-mismatched line is skipped with a
    warning and its unit is simply recomputed — corruption can delay a
    resume but never poison it.
    """

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.path = self.directory / "journal.jsonl"
        self._seen: "set[str]" = set()

    # -- writing -------------------------------------------------------
    def record(self, fingerprint: str, result: RunResult) -> None:
        """Append one completed unit (flushed + fsynced immediately)."""
        if fingerprint in self._seen:
            return
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        entry = {
            "v": JOURNAL_VERSION,
            "unit": fingerprint,
            "crc": zlib.crc32(payload),
            "payload": base64.b64encode(payload).decode("ascii"),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._seen.add(fingerprint)

    # -- reading -------------------------------------------------------
    def load(self) -> "dict[str, RunResult]":
        """Parse the journal into ``{fingerprint: RunResult}``.

        Damaged entries (truncation, garbage, checksum or version
        mismatch, unpicklable payload) are skipped with a warning; they
        are *never* returned, so the affected units get recomputed.
        """
        restored: "dict[str, RunResult]" = {}
        if not self.path.exists():
            return restored
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                result = self._decode_line(line, lineno)
                if result is None:
                    continue
                fingerprint, value = result
                restored[fingerprint] = value
                self._seen.add(fingerprint)
        return restored

    def _decode_line(self, line: str, lineno: int):
        def damaged(reason: str) -> None:
            warnings.warn(
                f"skipping damaged journal entry "
                f"({self.path}:{lineno}): {reason}; "
                f"the unit will be recomputed",
                RuntimeWarning,
                stacklevel=4,
            )

        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            damaged("not valid JSON (truncated write?)")
            return None
        if not isinstance(entry, dict) or entry.get("v") != JOURNAL_VERSION:
            damaged(f"unsupported entry version {entry!r:.40}")
            return None
        fingerprint = entry.get("unit")
        raw = entry.get("payload")
        if not isinstance(fingerprint, str) or not isinstance(raw, str):
            damaged("missing unit fingerprint or payload")
            return None
        try:
            payload = base64.b64decode(raw.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            damaged("payload is not valid base64")
            return None
        if zlib.crc32(payload) != entry.get("crc"):
            damaged("payload checksum mismatch")
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            damaged("payload does not unpickle")
            return None
        if not isinstance(value, RunResult):
            damaged(f"payload is not a RunResult: {type(value).__name__}")
            return None
        return fingerprint, value


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class UnitReport:
    """Supervision outcome of one work unit."""

    ordinal: int
    key: str
    fingerprint: str
    outcome: str = "pending"  # restored | ok | failed
    attempts: int = 0
    classifications: "list[str]" = field(default_factory=list)
    seconds: float = 0.0
    degraded: bool = False

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def to_record(self) -> dict:
        return {
            "ordinal": self.ordinal,
            "key": self.key,
            "unit": self.fingerprint,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "retries": self.retries,
            "classifications": list(self.classifications),
            "seconds": self.seconds,
            "degraded": self.degraded,
        }


@dataclass
class RunReport:
    """Structured account of one supervised run."""

    run_id: str
    units: "list[UnitReport]" = field(default_factory=list)
    degraded: bool = False
    wall_seconds: float = 0.0

    @property
    def restored(self) -> int:
        return sum(1 for u in self.units if u.outcome == "restored")

    @property
    def computed(self) -> int:
        return sum(1 for u in self.units if u.outcome == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for u in self.units if u.outcome == "failed")

    @property
    def total_retries(self) -> int:
        return sum(u.retries for u in self.units)

    def summary(self) -> str:
        return (
            f"run {self.run_id}: {len(self.units)} units "
            f"({self.restored} restored, {self.computed} computed, "
            f"{self.failed} failed), {self.total_retries} retries"
            + (", degraded to serial" if self.degraded else "")
        )


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuperviseConfig:
    """Operator-facing policy for a supervised run."""

    run_id: str
    resume: bool = False
    journal: bool = True
    timeout: float = 300.0
    retries: int = 2
    backoff: float = 0.1
    degrade_after: int = 3
    fault_plan: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if not self.run_id or "/" in self.run_id or self.run_id in (".", ".."):
            raise ReproError(f"invalid run id: {self.run_id!r}")
        if self.timeout <= 0:
            raise ReproError(f"per-unit timeout must be positive: {self.timeout}")
        if self.retries < 0:
            raise ReproError(f"retry budget must be non-negative: {self.retries}")
        if self.backoff < 0:
            raise ReproError(f"backoff must be non-negative: {self.backoff}")
        if self.degrade_after < 1:
            raise ReproError(
                f"degrade threshold must be positive: {self.degrade_after}"
            )


def _worker_main(
    conn, unit, ordinal, attempt, cache_dir, fault_spec
) -> None:  # pragma: no cover — runs in a child process
    """Entry point of one supervised worker process (one unit, one attempt)."""
    try:
        from repro.cache import CALIBRATION, configure_from_env
        from repro.eval.parallel import _execute_unit

        configure_from_env(default_disk=False)
        if cache_dir is not None:
            CALIBRATION.enable_disk(cache_dir)
        plan = FaultPlan.parse(fault_spec)
        if plan is not None:
            _trigger_in_worker(plan.lookup(ordinal, attempt))
        conn.send(("ok", _execute_unit(unit)))
    except BaseException as exc:  # report, then die: nothing to salvage
        try:
            conn.send(("error", f"exception:{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


@dataclass
class _Task:
    """Book-keeping for one unit the supervisor still has to compute."""

    index: int  # position within the current evaluate() call
    ordinal: int  # position in overall plan order (fault-plan address)
    unit: object
    report: UnitReport
    attempt: int = 0


class Supervisor:
    """Fault-tolerant executor behind ``evaluate_units``.

    One supervisor lives for one run (one CLI invocation); successive
    ``evaluate`` calls share its journal, fault plan, unit ordinals, and
    report.  The result list of each call is bit-identical to the plain
    engine's, whether units were computed, retried, or restored.
    """

    def __init__(self, config: SuperviseConfig) -> None:
        self.config = config
        self.directory = runs_root() / config.run_id
        self.journal = RunJournal(self.directory) if config.journal else None
        self._restored: "dict[str, RunResult]" = {}
        if config.resume:
            if self.journal is None:
                raise ReproError("cannot resume with the journal disabled")
            self._restored = self.journal.load()
        self.report = RunReport(run_id=config.run_id)
        self.degraded = False
        self._next_ordinal = 0
        self._started = time.monotonic()

    # -- run metadata --------------------------------------------------
    def write_meta(self, meta: dict) -> Path:
        """Persist run metadata (what to re-run on ``--resume``)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / "meta.json"
        payload = dict(meta)
        payload.setdefault("version", __version__)
        payload.setdefault("run_id", self.config.run_id)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def write_report(self) -> Path:
        """Write the structured run report into the run directory."""
        self.report.wall_seconds = time.monotonic() - self._started
        self.report.degraded = self.degraded
        record = records.run_report_record(self.report)
        return records.write_json(record, self.directory / "report.json")

    # -- main entry ----------------------------------------------------
    def evaluate(self, units, jobs: int = 1) -> "list[RunResult]":
        """Supervised counterpart of ``parallel.evaluate_units``."""
        units = list(units)
        results: "list[RunResult | None]" = [None] * len(units)
        tasks: "list[_Task]" = []
        for i, unit in enumerate(units):
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            fingerprint = unit_fingerprint(unit)
            report = UnitReport(
                ordinal=ordinal, key=records._key_str(unit.key),
                fingerprint=fingerprint,
            )
            self.report.units.append(report)
            restored = self._restored.get(fingerprint)
            if restored is not None:
                report.outcome = "restored"
                results[i] = restored
                continue
            tasks.append(_Task(index=i, ordinal=ordinal, unit=unit, report=report))
        jobs = max(1, int(jobs))
        workers = min(jobs, len(tasks)) if tasks else 0
        timing.note_parallel(units=len(units), workers=max(workers, 1))
        if tasks:
            if workers > 1 and not self.degraded:
                self._run_pool(tasks, results, workers)
            else:
                for task in tasks:
                    self._run_inline(task, results)
        timing.note_supervise(
            restored=self.report.restored,
            retries=self.report.total_retries,
            degraded=self.degraded,
        )
        failed = [t for t in tasks if t.report.outcome == "failed"]
        if failed:
            names = ", ".join(t.report.key or str(t.ordinal) for t in failed)
            raise SupervisionError(
                f"{len(failed)} unit(s) failed permanently after retries: "
                f"{names}; completed units are journaled — resume with "
                f"'python -m repro run --resume {self.config.run_id}'"
            )
        for unit, result in zip(units, results):
            records.note_run(unit.key, result)
        return results  # type: ignore[return-value]

    # -- completion plumbing -------------------------------------------
    def _complete(self, task: _Task, results, result: RunResult) -> None:
        task.report.outcome = "ok"
        results[task.index] = result
        if self.journal is not None:
            self.journal.record(task.report.fingerprint, result)

    def _register_failure(self, task: _Task, classification: str) -> bool:
        """Record one failed attempt; returns True if a retry remains."""
        task.report.classifications.append(classification)
        task.attempt += 1
        if task.attempt <= self.config.retries:
            return True
        task.report.outcome = "failed"
        return False

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff before dispatching ``attempt`` (1-based)."""
        return self.config.backoff * (2.0 ** max(0, attempt - 1))

    # -- in-process execution ------------------------------------------
    def _run_inline(self, task: _Task, results) -> None:
        """Serial execution (jobs=1, or after pool degradation).

        Per-unit timeouts are not enforceable without a worker process;
        ``raise`` faults stay retryable, while ``kill``/``hang`` faults
        abort the run the way a dead operator process would.
        """
        from repro.eval.parallel import _execute_unit

        plan = self.config.fault_plan
        task.report.degraded = self.degraded
        while True:
            action = plan.lookup(task.ordinal, task.attempt) if plan else None
            if action in ("kill", "hang") and self.degraded:
                # These fault kinds target worker processes; after
                # degradation there is none left to sacrifice, which is
                # precisely what the fallback is recovering from.
                action = None
            if action in ("kill", "hang"):
                task.report.classifications.append(f"aborted:{action}")
                raise FaultAbort(
                    f"injected {action} fault aborted the run in-process "
                    f"(unit {task.ordinal}, attempt {task.attempt})"
                )
            started = time.perf_counter()
            try:
                if action == "raise":
                    raise InjectedFault("injected exception fault")
                result = _execute_unit(task.unit)
            except Exception as exc:
                task.report.seconds += time.perf_counter() - started
                task.report.attempts = task.attempt + 1
                if not self._register_failure(
                    task, f"exception:{type(exc).__name__}: {exc}"
                ):
                    return
                time.sleep(self._backoff_delay(task.attempt))
                continue
            task.report.seconds += time.perf_counter() - started
            task.report.attempts = task.attempt + 1
            self._complete(task, results, result)
            return

    # -- pooled execution ----------------------------------------------
    def _run_pool(self, tasks, results, workers: int) -> None:
        """Dispatch tasks to per-unit worker processes with supervision."""
        import multiprocessing
        from multiprocessing.connection import wait as conn_wait

        from repro.cache import CALIBRATION
        from repro.eval.parallel import _pool_context

        ctx = _pool_context()
        cache_dir = (
            str(CALIBRATION.directory) if CALIBRATION.disk_enabled else None
        )
        fault_spec = (
            self.config.fault_plan.to_spec() if self.config.fault_plan else None
        )
        pending = list(reversed(tasks))  # pop() keeps plan order
        retry_heap: "list[tuple[float, int, _Task]]" = []
        running: "dict[object, tuple[_Task, object, float, float]]" = {}
        seq = 0
        consecutive_pool_failures = 0

        def dispatch(task: _Task) -> None:
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child, task.unit, task.ordinal, task.attempt,
                    cache_dir, fault_spec,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            now = time.monotonic()
            running[parent] = (task, proc, now, now + self.config.timeout)

        def reap(conn, proc) -> None:
            try:
                conn.close()
            except OSError:
                pass
            proc.join()
            proc.close()

        def fail_or_retry(task: _Task, classification: str) -> None:
            task.report.attempts = task.attempt + 1
            if self._register_failure(task, classification):
                heapq.heappush(
                    retry_heap,
                    (
                        time.monotonic() + self._backoff_delay(task.attempt),
                        next_seq(),
                        task,
                    ),
                )

        def next_seq() -> int:
            nonlocal seq
            seq += 1
            return seq

        while pending or retry_heap or running:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, task = heapq.heappop(retry_heap)
                pending.append(task)  # retries jump the queue (pop() side)
            while pending and len(running) < workers:
                dispatch(pending.pop())
            if not running:
                # Nothing in flight: sleep until the earliest retry.
                if retry_heap:
                    delay = max(0.0, retry_heap[0][0] - time.monotonic())
                    time.sleep(min(delay, 0.5))
                continue
            deadline = min(entry[3] for entry in running.values())
            if retry_heap:
                deadline = min(deadline, retry_heap[0][0])
            ready = conn_wait(
                list(running), timeout=max(0.0, deadline - time.monotonic())
            )
            for conn in ready:
                task, proc, started, _ = running.pop(conn)
                task.report.seconds += time.monotonic() - started
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError):
                    # The worker died without reporting: classify its end.
                    proc.join()
                    code = proc.exitcode
                    if code is not None and code < 0:
                        try:
                            sig = signal.Signals(-code).name
                        except ValueError:
                            sig = str(-code)
                        classification = f"signal:{sig}"
                    else:
                        classification = f"exit:{code}"
                    reap(conn, proc)
                    consecutive_pool_failures += 1
                    fail_or_retry(task, classification)
                else:
                    reap(conn, proc)
                    if kind == "ok":
                        consecutive_pool_failures = 0
                        task.report.attempts = task.attempt + 1
                        self._complete(task, results, payload)
                    else:
                        # The unit raised inside a healthy worker: the
                        # pool is fine, the unit is suspect.
                        consecutive_pool_failures = 0
                        fail_or_retry(task, str(payload))
            now = time.monotonic()
            for conn in [c for c, e in list(running.items()) if e[3] <= now]:
                task, proc, started, _ = running.pop(conn)
                task.report.seconds += now - started
                if proc.is_alive():
                    proc.kill()
                reap(conn, proc)
                consecutive_pool_failures += 1
                fail_or_retry(task, "timeout")
            if (
                consecutive_pool_failures >= self.config.degrade_after
                and not self.degraded
            ):
                self._degrade(pending, retry_heap, running, results)
                return

    def _degrade(self, pending, retry_heap, running, results) -> None:
        """The pool keeps dying: finish the remaining units in-process."""
        self.degraded = True
        warnings.warn(
            f"worker pool failed {self.config.degrade_after} times in a row; "
            f"degrading run {self.config.run_id!r} to in-process serial "
            f"execution",
            RuntimeWarning,
            stacklevel=2,
        )
        leftovers: "list[_Task]" = []
        for conn, (task, proc, started, _) in list(running.items()):
            task.report.seconds += time.monotonic() - started
            if proc.is_alive():
                proc.kill()
            proc.join()
            proc.close()
            try:
                conn.close()
            except OSError:
                pass
            # The in-flight attempt was sacrificed with the pool: charge
            # it to the retry budget so attempt-qualified faults do not
            # re-fire on the serial rerun.
            task.report.attempts = task.attempt + 1
            self._register_failure(task, "aborted:pool-degraded")
            leftovers.append(task)
        running.clear()
        while retry_heap:
            leftovers.append(heapq.heappop(retry_heap)[2])
        leftovers.extend(reversed(pending))
        pending.clear()
        for task in sorted(leftovers, key=lambda t: t.ordinal):
            if task.report.outcome == "failed":
                continue
            self._run_inline(task, results)


# ----------------------------------------------------------------------
# Active-supervisor plumbing (consulted by parallel.evaluate_units)
# ----------------------------------------------------------------------
_ACTIVE: "list[Supervisor]" = []


def active() -> "Supervisor | None":
    """The innermost active supervisor, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(config: SuperviseConfig):
    """Install a supervisor for every ``evaluate_units`` call inside.

    The run report is written to the run directory on exit — success or
    failure — so an aborted sweep still leaves its account behind.
    """
    supervisor = Supervisor(config)
    _ACTIVE.append(supervisor)
    try:
        yield supervisor
    finally:
        _ACTIVE.remove(supervisor)
        if config.journal:
            try:
                supervisor.write_report()
            except OSError:
                pass


def generate_run_id() -> str:
    """A fresh, filesystem-safe run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    suffix = os.urandom(3).hex()
    return f"{stamp}-{suffix}"


def read_meta(run_id: str) -> dict:
    """Load a run's recorded metadata (for ``repro run --resume``)."""
    path = runs_root() / run_id / "meta.json"
    try:
        meta = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(
            f"no such run: {run_id!r} (looked for {path}); "
            f"known runs live under {runs_root()}"
        )
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt run metadata {path}: {exc}")
    if not isinstance(meta, dict):
        raise ReproError(f"corrupt run metadata {path}: not an object")
    return meta
