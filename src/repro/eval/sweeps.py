"""Parameter sweeps: sensitivity of the QUETZAL speedup to workload knobs.

Not paper figures — supporting analyses for the ablation benches: how the
QZ+C advantage responds to read length, error rate, and the SneakySnake
threshold.  All sweeps are seeded and return reporting-ready rows.
"""

from __future__ import annotations

from typing import Iterable

from repro.align.quetzal_impl import SsQzc, WfaQzc
from repro.align.vectorized import SsVec, WfaVec
from repro.errors import ReproError
from repro.eval.parallel import evaluate_cells
from repro.genomics.generator import ErrorProfile, ReadPairGenerator


def _profile(error_rate: float) -> ErrorProfile:
    return ErrorProfile(
        substitution=error_rate * 0.6,
        insertion=error_rate * 0.2,
        deletion=error_rate * 0.2,
    )


def sweep_error_rate(
    rates: Iterable[float] = (0.002, 0.005, 0.01, 0.02, 0.04),
    length: int = 2000,
    pairs: int = 2,
    seed: int = 33,
    jobs: int = 1,
) -> list[dict]:
    """WFA QZ+C speedup over VEC as the error rate grows.

    More errors mean more wavefronts and shorter match runs: the count
    ALU's window advantage shrinks while staging amortises better —
    the sweep shows where the net lands.
    """
    rates = list(rates)
    cells = []
    batches = {}
    for rate in rates:
        if not 0 < rate < 0.2:
            raise ReproError(f"error rate out of range: {rate}")
        gen = ReadPairGenerator(length, _profile(rate), seed=seed)
        batch = gen.pairs(pairs)
        batches[rate] = batch
        cells.append(((rate, "vec"), WfaVec(), batch))
        cells.append(((rate, "qzc"), WfaQzc(), batch))
    runs = evaluate_cells(cells, jobs=jobs)
    rows = []
    for rate in rates:
        vec = runs[(rate, "vec")]
        qzc = runs[(rate, "qzc")]
        rows.append(
            {
                "error_rate": rate,
                "mean_distance": sum(vec.outputs) / len(batches[rate]),
                "vec_cycles": vec.cycles,
                "qzc_cycles": qzc.cycles,
                "speedup": vec.cycles / qzc.cycles,
            }
        )
    return rows


def sweep_read_length(
    lengths: Iterable[int] = (100, 250, 1000, 4000, 10_000),
    error_rate: float = 0.005,
    seed: int = 34,
    jobs: int = 1,
) -> list[dict]:
    """WFA QZ+C speedup over VEC as reads grow (the Fig. 13a x-axis)."""
    lengths = list(lengths)
    cells = []
    for length in lengths:
        gen = ReadPairGenerator(length, _profile(error_rate), seed=seed)
        batch = gen.pairs(1)
        cells.append(((length, "vec"), WfaVec(), batch))
        cells.append(((length, "qzc"), WfaQzc(), batch))
    runs = evaluate_cells(cells, jobs=jobs)
    rows = []
    for length in lengths:
        vec = runs[(length, "vec")]
        qzc = runs[(length, "qzc")]
        rows.append(
            {
                "length": length,
                "vec_cycles": vec.cycles,
                "qzc_cycles": qzc.cycles,
                "speedup": vec.cycles / qzc.cycles,
            }
        )
    return rows


def sweep_ss_threshold(
    thresholds: Iterable[int] = (2, 5, 10, 20, 40),
    length: int = 1000,
    error_rate: float = 0.01,
    pairs: int = 2,
    seed: int = 35,
    jobs: int = 1,
) -> list[dict]:
    """SneakySnake QZ+C speedup vs the edit threshold E.

    E controls the diagonal count per snake step (2E+1): larger E means
    more lanes of gather traffic for VEC to pay and QUETZAL to avoid.
    """
    thresholds = list(thresholds)
    cells = []
    batches = {}
    for threshold in thresholds:
        gen = ReadPairGenerator(length, _profile(error_rate), seed=seed)
        batch = gen.pairs(pairs)
        batches[threshold] = batch
        cells.append(((threshold, "vec"), SsVec(threshold=threshold), batch))
        cells.append(((threshold, "qzc"), SsQzc(threshold=threshold), batch))
    runs = evaluate_cells(cells, jobs=jobs)
    rows = []
    for threshold in thresholds:
        vec = runs[(threshold, "vec")]
        qzc = runs[(threshold, "qzc")]
        batch = batches[threshold]
        accepted = sum(1 for out in qzc.outputs if out.accepted)
        rows.append(
            {
                "threshold": threshold,
                "accepted": f"{accepted}/{len(batch)}",
                "vec_cycles": vec.cycles,
                "qzc_cycles": qzc.cycles,
                "speedup": vec.cycles / qzc.cycles,
            }
        )
    return rows
