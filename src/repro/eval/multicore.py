"""Multicore scaling model (Fig. 13b).

Pairs distribute across cores embarrassingly, so compute time divides by
the core count; what does not divide is DRAM bandwidth, which all cores
share.  The paper attributes Fig. 13b's sub-linear long-read scaling to
exactly this: "memory bandwidth limits performance scaling".  The model
takes a single-core run's measured cycle count and DRAM traffic and
returns::

    time(N) = max(compute_cycles / (N * clock),  dram_bytes / bandwidth)
              + sync_overhead(N)

with a small per-core synchronisation term.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.eval.runner import RunResult

#: Fixed per-batch synchronisation/imbalance overhead per extra core.
SYNC_OVERHEAD_FRACTION = 0.01


def multicore_time_seconds(
    result: RunResult, cores: int, system: SystemConfig | None = None
) -> float:
    """Projected wall time of the measured batch on ``cores`` cores."""
    if cores < 1:
        raise ReproError(f"core count must be positive: {cores}")
    system = system or result.system
    clock_hz = system.clock_ghz * 1e9
    compute = result.cycles / (cores * clock_hz)
    bandwidth = system.dram_bandwidth_gbs * 1e9
    memory = result.dram_bytes / bandwidth
    sync = (result.cycles / clock_hz) * SYNC_OVERHEAD_FRACTION * (
        (cores - 1) / max(1, cores)
    ) / cores
    return max(compute, memory) + sync


def multicore_speedups(
    result: RunResult, core_counts, system: SystemConfig | None = None
) -> dict[int, float]:
    """Speedup over one core for each requested core count."""
    base = multicore_time_seconds(result, 1, system)
    return {
        n: base / multicore_time_seconds(result, n, system) for n in core_counts
    }
