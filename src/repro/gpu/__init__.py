"""Analytic GPU throughput models (the paper's A40 comparison, Fig. 15a)."""

from repro.gpu.model import GpuConfig, GpuAlignerModel, NVIDIA_A40, WFA_GPU, GASAL2

__all__ = ["GpuConfig", "GpuAlignerModel", "NVIDIA_A40", "WFA_GPU", "GASAL2"]
