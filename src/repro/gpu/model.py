"""Occupancy-limited analytic GPU model (Section VII-D substitution).

We cannot run an NVIDIA A40.  The paper attributes the GPU's long-read
fade to *occupancy*: each alignment's working set (DP band or wavefronts
plus sequences) must stay resident on-chip, and as reads grow the
resident-alignment count per SM falls, idling the machine (Section II-E
and the WFA-GPU paper it cites).  This model expresses that mechanism:

    workers_per_sm(L)  = clamp(on_chip_bytes / working_set(L), 1, max)
    occupancy(L)       = workers_per_sm(L) / max_workers

Because this reproduction's absolute cycle counts live on a simulated
CPU, GPU throughput is anchored *relative to the simulated VEC CPU run*:

    gpu_rate(L) = vec_rate(L) * short_read_advantage * occupancy(L)

``short_read_advantage`` is the paper's measured full-occupancy edge of
each tool over the 16-core VEC CPU; the occupancy curve then produces the
long-read fade (the paper reports a 40% drop for WFA-GPU and 83% for
GASAL2 between the regimes, which the working-set constants are fitted
to — see EXPERIMENTS.md).  ``alignments_per_second`` remains available
for standalone absolute estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class GpuConfig:
    """Device parameters (public spec values)."""

    name: str = "NVIDIA A40"
    num_sms: int = 84
    clock_ghz: float = 1.74
    #: Shared memory + L1 usable per SM for alignment state.
    on_chip_kb_per_sm: int = 100
    max_workers_per_sm: int = 32
    die_mm2: float = 628.0


NVIDIA_A40 = GpuConfig()


@dataclass(frozen=True)
class AlignerKind:
    """Per-tool analytic parameters."""

    name: str
    #: Working set per alignment, bytes: a + b*L + c*(err*L)^2.
    ws_fixed: float
    ws_per_base: float
    ws_per_score2: float
    #: Full-occupancy throughput edge over the 16-core VEC CPU.
    short_read_advantage: float
    #: Compute cycles per work unit, for standalone absolute estimates.
    cycles_per_unit: float
    #: Work units: "score2" (wavefront area, WFA-like) or "band" (L*band).
    work_model: str
    band_frac: float = 0.10

    def working_set(self, length: int, error_rate: float) -> float:
        s = max(1.0, error_rate * length)
        return self.ws_fixed + self.ws_per_base * length + self.ws_per_score2 * s * s

    def work_units(self, length: int, error_rate: float) -> float:
        if self.work_model == "score2":
            s = max(1.0, error_rate * length)
            return s * s + 4.0 * length
        if self.work_model == "band":
            return length * max(8.0, self.band_frac * length)
        raise ReproError(f"unknown work model: {self.work_model}")


#: WFA-GPU: wavefront state per alignment; moderate per-base footprint.
WFA_GPU = AlignerKind(
    name="WFA-GPU",
    ws_fixed=2048.0,
    ws_per_base=0.15,
    ws_per_score2=0.5,
    short_read_advantage=3.3,
    cycles_per_unit=140.0,
    work_model="score2",
)

#: GASAL2: banded DP tiles; heavy per-base footprint (the 83% drop).
GASAL2 = AlignerKind(
    name="GASAL2",
    ws_fixed=2048.0,
    ws_per_base=0.55,
    ws_per_score2=0.0,
    short_read_advantage=7.6,
    cycles_per_unit=2.2,
    work_model="band",
)


class GpuAlignerModel:
    """Throughput of one GPU aligner across read-length regimes."""

    def __init__(self, kind: AlignerKind, gpu: GpuConfig = NVIDIA_A40) -> None:
        self.kind = kind
        self.gpu = gpu

    def workers_per_sm(self, length: int, error_rate: float) -> float:
        ws = self.kind.working_set(length, error_rate)
        budget = self.gpu.on_chip_kb_per_sm * 1024
        return max(1.0, min(self.gpu.max_workers_per_sm, budget / ws))

    def occupancy(self, length: int, error_rate: float) -> float:
        """Resident workers as a fraction of the maximum."""
        return self.workers_per_sm(length, error_rate) / self.gpu.max_workers_per_sm

    def advantage_over_vec(self, length: int, error_rate: float) -> float:
        """Throughput multiple over the 16-core VEC CPU at this regime."""
        return self.kind.short_read_advantage * self.occupancy(length, error_rate)

    def throughput_vs_vec(
        self, vec_pairs_per_second: float, length: int, error_rate: float
    ) -> float:
        """GPU pairs/s anchored to a measured VEC CPU rate (see module doc)."""
        if vec_pairs_per_second <= 0:
            raise ReproError("vec rate must be positive")
        return vec_pairs_per_second * self.advantage_over_vec(length, error_rate)

    def cycles_per_alignment(self, length: int, error_rate: float) -> float:
        return self.kind.cycles_per_unit * self.kind.work_units(length, error_rate)

    def alignments_per_second(self, length: int, error_rate: float) -> float:
        """Standalone absolute estimate (device-calibrated, not CPU-anchored)."""
        if length < 1:
            raise ReproError("length must be positive")
        workers = self.workers_per_sm(length, error_rate) * self.gpu.num_sms
        rate_per_worker = (
            self.gpu.clock_ghz * 1e9 / self.cycles_per_alignment(length, error_rate)
        )
        return workers * rate_per_worker
