"""Software reference for QUETZAL's data encodings (Section IV-A, Fig. 9).

The hardware data encoder derives the 2-bit code of a nucleotide by
extracting **bits 1 and 2 of its ASCII byte** (bit 0 is the LSB):

====== ========= ==========
symbol ASCII     2-bit code
====== ========= ==========
A      0100_0001 ``00``
C      0100_0011 ``01``
T      0101_0100 ``10``
G      0100_0111 ``11``
U      0101_0101 ``10`` (same as T)
====== ========= ==========

Packed words are little-endian in element order: element ``i`` of a packed
stream occupies bits ``[w*i, w*i + w)`` of word ``i // (64//w)``, matching
the QBUFFER's SRAM word layout so the count ALU's *trailing-ones* logic
counts matches starting from the requested element.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.genomics.alphabet import Alphabet, DNA

#: Hardware 2-bit code -> nucleotide, per the bit-extraction rule above.
HW_CODE_TO_DNA = "ACTG"
HW_CODE_TO_RNA = "ACUG"


def _as_ascii(seq: "str | bytes | np.ndarray") -> np.ndarray:
    if isinstance(seq, str):
        return np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    if isinstance(seq, (bytes, bytearray)):
        return np.frombuffer(bytes(seq), dtype=np.uint8)
    arr = np.asarray(seq, dtype=np.uint8)
    return arr


def encode_2bit(seq: "str | bytes | np.ndarray") -> np.ndarray:
    """Encode nucleotides to 2-bit hardware codes by ASCII bit extraction.

    Mirrors the data-encoder datapath exactly: ``code = (byte >> 1) & 0b11``.
    Returns a uint8 array with values in ``[0, 4)``.
    """
    ascii_bytes = _as_ascii(seq)
    return ((ascii_bytes >> 1) & 0b11).astype(np.uint8)


def decode_2bit(codes: np.ndarray, rna: bool = False) -> str:
    """Decode 2-bit hardware codes back to a DNA (or RNA) string."""
    codes = np.asarray(codes)
    if codes.size and int(codes.max()) > 3:
        raise EncodingError("2-bit code out of range")
    letters = HW_CODE_TO_RNA if rna else HW_CODE_TO_DNA
    lut = np.frombuffer(letters.encode("ascii"), dtype=np.uint8)
    return lut[codes].tobytes().decode("ascii")


def encode_8bit(seq: "str | bytes | np.ndarray", alphabet: Alphabet) -> np.ndarray:
    """Encode symbols to their 8-bit alphabet codes (protein / DNA+N mode)."""
    if isinstance(seq, np.ndarray):
        return np.asarray(seq, dtype=np.uint8)
    text = seq.decode("ascii") if isinstance(seq, (bytes, bytearray)) else seq
    return alphabet.codes(text)


def pack_words(values: np.ndarray, element_bits: int) -> np.ndarray:
    """Pack ``element_bits``-wide values into little-endian uint64 words.

    Element ``i`` occupies bits ``[w*i % 64, ...)`` of word ``i // (64//w)``.
    The tail word is zero-padded.
    """
    if element_bits not in (2, 8, 64):
        raise EncodingError(f"unsupported element width: {element_bits}")
    values = np.asarray(values, dtype=np.uint64)
    if element_bits < 64 and values.size and int(values.max()) >= (1 << element_bits):
        raise EncodingError(f"value too wide for {element_bits}-bit packing")
    if element_bits == 64:
        return values.copy()
    per_word = 64 // element_bits
    n_words = -(-values.size // per_word) if values.size else 0
    padded = np.zeros(n_words * per_word, dtype=np.uint64)
    padded[: values.size] = values
    shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(element_bits))
    lanes = padded.reshape(n_words, per_word) << shifts
    return np.bitwise_or.reduce(lanes, axis=1)


def unpack_words(words: np.ndarray, element_bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_words`: extract ``count`` elements."""
    if element_bits not in (2, 8, 64):
        raise EncodingError(f"unsupported element width: {element_bits}")
    words = np.asarray(words, dtype=np.uint64)
    if element_bits == 64:
        if count > words.size:
            raise EncodingError("not enough words to unpack")
        return words[:count].copy()
    per_word = 64 // element_bits
    if count > words.size * per_word:
        raise EncodingError("not enough words to unpack")
    shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(element_bits))
    mask = np.uint64((1 << element_bits) - 1)
    lanes = (words[:, None] >> shifts) & mask
    return lanes.reshape(-1)[:count]


def pack_2bit_words(values: np.ndarray) -> np.ndarray:
    """Pack 2-bit codes, 32 per 64-bit word."""
    return pack_words(values, 2)


def unpack_2bit_words(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` 2-bit codes."""
    return unpack_words(words, 2, count)


def pack_8bit_words(values: np.ndarray) -> np.ndarray:
    """Pack 8-bit codes, 8 per 64-bit word."""
    return pack_words(values, 8)


def unpack_8bit_words(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` 8-bit codes."""
    return unpack_words(words, 8, count)


def encoded_codes(seq: "str | Sequence", alphabet: Alphabet = DNA) -> np.ndarray:
    """Encode a sequence with the width its alphabet requires.

    2-bit alphabets use the hardware bit-extraction codes; 8-bit alphabets
    use their canonical alphabet index.
    """
    text = str(seq)
    alphabet.validate(text)
    if alphabet.encoded_bits == 2:
        return encode_2bit(text)
    return encode_8bit(text, alphabet)
