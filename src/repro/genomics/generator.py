"""Seeded synthetic read-pair generation.

The paper evaluates on read pairs from the SneakySnake repository (real
Illumina 100bp/250bp reads) and on simulated 10Kbp/30Kbp PacBio-HiFi-like
reads.  Neither dataset ships with this reproduction, so we generate
read pairs with the same *(length, edit-rate)* profiles: a random reference
read and a mutated copy with substitutions, insertions and deletions drawn
at the profile's rates.  The alignment algorithms only observe the pair's
length and edit structure, so matched profiles exercise identical code
paths (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.genomics.alphabet import Alphabet, DNA
from repro.genomics.sequence import Sequence


@dataclass(frozen=True)
class ErrorProfile:
    """Per-base error rates applied when mutating a read.

    ``substitution + insertion + deletion`` is the expected total edit rate;
    Illumina profiles are substitution-dominated, long-read profiles carry
    more indels.
    """

    substitution: float = 0.02
    insertion: float = 0.0
    deletion: float = 0.0

    def __post_init__(self) -> None:
        total = self.substitution + self.insertion + self.deletion
        if not 0.0 <= total <= 0.5:
            raise DatasetError(f"total error rate {total} outside [0, 0.5]")

    @property
    def total(self) -> float:
        return self.substitution + self.insertion + self.deletion


#: Substitution-dominated short-read (Illumina-like) profile.
ILLUMINA_PROFILE = ErrorProfile(substitution=0.02, insertion=0.0025, deletion=0.0025)

#: PacBio HiFi reads are >=99.5% accurate (Q20+); errors skew to indels.
HIFI_PROFILE = ErrorProfile(substitution=0.002, insertion=0.0015, deletion=0.0015)


@dataclass(frozen=True)
class SequencePair:
    """A (pattern, text) read pair plus the number of edits applied.

    ``edits_applied`` is the count of mutation events, an upper bound on the
    true edit distance (nearby events can cancel).
    """

    pattern: Sequence
    text: Sequence
    edits_applied: int = 0

    def __iter__(self):
        return iter((self.pattern, self.text))

    @property
    def max_length(self) -> int:
        return max(len(self.pattern), len(self.text))


class ReadPairGenerator:
    """Deterministic generator of synthetic read pairs.

    Parameters
    ----------
    length:
        Length of the reference read (the mutated copy may differ by the
        applied indels).
    profile:
        Error rates for the mutated copy.
    alphabet:
        Symbol alphabet; defaults to DNA.
    seed:
        Seed for the underlying PCG64 generator; identical seeds reproduce
        identical datasets.
    """

    def __init__(
        self,
        length: int,
        profile: ErrorProfile = ILLUMINA_PROFILE,
        alphabet: Alphabet = DNA,
        seed: int = 0,
    ) -> None:
        if length < 1:
            raise DatasetError(f"read length must be positive: {length}")
        self.length = length
        self.profile = profile
        self.alphabet = alphabet
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def random_sequence(self, length: int | None = None) -> Sequence:
        """Draw a uniform random sequence over the alphabet."""
        n = self.length if length is None else length
        codes = self._rng.integers(0, len(self.alphabet), size=n)
        return Sequence(self.alphabet.text(codes), self.alphabet)

    def mutate(self, reference: Sequence) -> tuple[Sequence, int]:
        """Apply the error profile to ``reference``; return (read, n_edits)."""
        p = self.profile
        letters = len(self.alphabet)
        out: list[int] = []
        edits = 0
        codes = reference.codes
        rolls = self._rng.random(len(codes))
        for i, code in enumerate(codes):
            roll = rolls[i]
            if roll < p.substitution:
                new = int(self._rng.integers(0, letters - 1))
                if new >= code:
                    new += 1
                out.append(new)
                edits += 1
            elif roll < p.substitution + p.deletion:
                edits += 1
            elif roll < p.substitution + p.deletion + p.insertion:
                out.append(int(self._rng.integers(0, letters)))
                out.append(int(code))
                edits += 1
            else:
                out.append(int(code))
        text = self.alphabet.text(np.asarray(out, dtype=np.uint8))
        return Sequence(text, self.alphabet), edits

    def pair(self) -> SequencePair:
        """Generate one (pattern, text) pair."""
        pattern = self.random_sequence()
        text, edits = self.mutate(pattern)
        return SequencePair(pattern=pattern, text=text, edits_applied=edits)

    def pairs(self, count: int) -> list[SequencePair]:
        """Generate ``count`` pairs."""
        if count < 0:
            raise DatasetError(f"pair count must be non-negative: {count}")
        return [self.pair() for _ in range(count)]

    def stream(self) -> Iterator[SequencePair]:
        """Endless stream of pairs."""
        while True:
            yield self.pair()


class ProteinFamilyGenerator:
    """Synthetic stand-in for the BAliBase4 protein dataset.

    Generates *families*: a consensus sequence plus ``members`` mutated
    copies, mimicking BAliBase's multiple-sequence-alignment groups.  The
    paper aligns all pairs within each group; :meth:`family_pairs` returns
    exactly that pairing.
    """

    def __init__(
        self,
        length: int = 200,
        members: int = 4,
        divergence: float = 0.10,
        seed: int = 0,
    ) -> None:
        from repro.genomics.alphabet import PROTEIN

        if members < 2:
            raise DatasetError("a family needs at least two members")
        self.length = length
        self.members = members
        self._gen = ReadPairGenerator(
            length,
            ErrorProfile(
                substitution=divergence * 0.8,
                insertion=divergence * 0.1,
                deletion=divergence * 0.1,
            ),
            alphabet=PROTEIN,
            seed=seed,
        )

    def family(self) -> list[Sequence]:
        """One family: ``members`` sequences mutated from a shared consensus."""
        consensus = self._gen.random_sequence()
        return [self._gen.mutate(consensus)[0] for _ in range(self.members)]

    def family_pairs(self, n_families: int) -> list[SequencePair]:
        """All within-family pairs across ``n_families`` families."""
        out = []
        for _ in range(n_families):
            seqs = self.family()
            for i in range(len(seqs)):
                for j in range(i + 1, len(seqs)):
                    out.append(SequencePair(seqs[i], seqs[j]))
        return out
