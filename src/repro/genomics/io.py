"""Minimal FASTA / FASTQ and pair-file I/O.

The SneakySnake repository distributes read pairs as text files with one
sequence per line, pattern and text alternating; we support that format
(:func:`read_pair_file` / :func:`write_pair_file`) plus standard FASTA and
FASTQ for interoperability.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.errors import DatasetError
from repro.genomics.alphabet import Alphabet, DNA
from repro.genomics.generator import SequencePair
from repro.genomics.sequence import Sequence


def _open(source: "str | Path | TextIO", mode: str = "r"):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def parse_fasta(source: "str | Path | TextIO", alphabet: Alphabet = DNA) -> Iterator[Sequence]:
    """Yield sequences from a FASTA stream or path."""
    handle, owned = _open(source)
    try:
        name = None
        chunks: list[str] = []
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield Sequence("".join(chunks), alphabet, name=name)
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise DatasetError("FASTA record data before first header")
                chunks.append(line.upper())
        if name is not None:
            yield Sequence("".join(chunks), alphabet, name=name)
    finally:
        if owned:
            handle.close()


def write_fasta(
    sequences: Iterable[Sequence], target: "str | Path | TextIO", width: int = 70
) -> None:
    """Write sequences as FASTA with ``width``-column wrapping."""
    handle, owned = _open(target, "w")
    try:
        for i, seq in enumerate(sequences):
            name = seq.name or f"seq{i}"
            handle.write(f">{name}\n")
            text = str(seq)
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")
    finally:
        if owned:
            handle.close()


def parse_fastq(source: "str | Path | TextIO", alphabet: Alphabet = DNA) -> Iterator[Sequence]:
    """Yield sequences from a FASTQ stream or path (qualities are dropped)."""
    handle, owned = _open(source)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise DatasetError(f"malformed FASTQ header: {header!r}")
            seq_line = handle.readline().strip()
            plus = handle.readline().strip()
            qual = handle.readline().strip()
            if not plus.startswith("+"):
                raise DatasetError("malformed FASTQ record (missing '+')")
            if len(qual) != len(seq_line):
                raise DatasetError("FASTQ quality length mismatch")
            yield Sequence(seq_line.upper(), alphabet, name=header[1:].split()[0])
    finally:
        if owned:
            handle.close()


def read_pair_file(
    source: "str | Path | TextIO", alphabet: Alphabet = DNA
) -> list[SequencePair]:
    """Read SneakySnake-style pair files: alternating pattern/text lines."""
    handle, owned = _open(source)
    try:
        lines = [ln.strip().upper() for ln in handle if ln.strip()]
    finally:
        if owned:
            handle.close()
    if len(lines) % 2:
        raise DatasetError("pair file has an odd number of sequences")
    pairs = []
    for i in range(0, len(lines), 2):
        pairs.append(
            SequencePair(
                pattern=Sequence(lines[i], alphabet),
                text=Sequence(lines[i + 1], alphabet),
            )
        )
    return pairs


def write_pair_file(
    pairs: Iterable[SequencePair], target: "str | Path | TextIO"
) -> None:
    """Write pairs in the alternating-line format."""
    handle, owned = _open(target, "w")
    try:
        for pair in pairs:
            handle.write(str(pair.pattern) + "\n")
            handle.write(str(pair.text) + "\n")
    finally:
        if owned:
            handle.close()


def pairs_from_string(text: str, alphabet: Alphabet = DNA) -> list[SequencePair]:
    """Convenience: parse the alternating-line pair format from a string."""
    return read_pair_file(io.StringIO(text), alphabet)
