"""The evaluation datasets (paper Table II) and the protein dataset.

Four DNA datasets span the short-read (Illumina 100bp / 250bp) and
long-read (PacBio HiFi 10Kbp / 30Kbp) regimes.  The paper constrains the
number of reads per dataset for simulation time; we do the same, with the
counts scaled to what a Python cycle-level model can simulate.  Counts are
overridable everywhere.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.genomics.generator import (
    ErrorProfile,
    HIFI_PROFILE,
    ILLUMINA_PROFILE,
    ProteinFamilyGenerator,
    ReadPairGenerator,
    SequencePair,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table II dataset."""

    name: str
    read_length: int
    technology: str
    profile: ErrorProfile
    default_pairs: int
    #: SneakySnake edit-distance threshold used in the paper's SS runs,
    #: expressed as a fraction of read length.
    edit_threshold_frac: float = 0.05

    @property
    def edit_threshold(self) -> int:
        return max(1, int(self.read_length * self.edit_threshold_frac))

    @property
    def is_long_read(self) -> bool:
        return self.read_length >= 1000


#: The four DNA datasets of Table II.
TABLE_II_SPECS: dict[str, DatasetSpec] = {
    "100bp_1": DatasetSpec(
        name="100bp_1",
        read_length=100,
        technology="Illumina iSeq100 (real reads in the paper)",
        profile=ILLUMINA_PROFILE,
        default_pairs=20,
    ),
    "250bp_1": DatasetSpec(
        name="250bp_1",
        read_length=250,
        technology="Illumina NGS (real reads in the paper)",
        profile=ILLUMINA_PROFILE,
        default_pairs=12,
    ),
    "10Kbp": DatasetSpec(
        name="10Kbp",
        read_length=10_000,
        technology="PacBio HiFi (simulated)",
        profile=HIFI_PROFILE,
        default_pairs=3,
        edit_threshold_frac=0.01,
    ),
    "30Kbp": DatasetSpec(
        name="30Kbp",
        read_length=30_000,
        technology="PacBio HiFi (simulated)",
        profile=HIFI_PROFILE,
        default_pairs=2,
        edit_threshold_frac=0.01,
    ),
}

SHORT_READ_DATASETS = ("100bp_1", "250bp_1")
LONG_READ_DATASETS = ("10Kbp", "30Kbp")


@dataclass(frozen=True)
class Dataset:
    """A materialised dataset: spec + generated pairs."""

    spec: DatasetSpec
    pairs: tuple[SequencePair, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def total_bases(self) -> int:
        return sum(len(p.pattern) + len(p.text) for p in self.pairs)


def build_dataset(
    name: str, num_pairs: int | None = None, seed: int = 1234
) -> Dataset:
    """Materialise one Table II dataset deterministically.

    ``num_pairs=None`` uses the spec's default count (sized for Python
    simulation time); the seed is combined with the dataset name so each
    dataset draws independent reads.
    """
    try:
        spec = TABLE_II_SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(TABLE_II_SPECS)}"
        )
    count = spec.default_pairs if num_pairs is None else num_pairs
    # crc32, not hash(): str hashing is randomised per process, which
    # would give every CLI invocation (and every pool worker) different
    # reads for the same (name, seed).
    gen = ReadPairGenerator(
        length=spec.read_length,
        profile=spec.profile,
        seed=seed ^ zlib.crc32(name.encode("utf-8")),
    )
    return Dataset(spec=spec, pairs=tuple(gen.pairs(count)))


def build_all_datasets(
    scale: float = 1.0, seed: int = 1234
) -> dict[str, Dataset]:
    """Materialise all four DNA datasets, with pair counts scaled."""
    out = {}
    for name, spec in TABLE_II_SPECS.items():
        count = max(1, int(round(spec.default_pairs * scale)))
        out[name] = build_dataset(name, num_pairs=count, seed=seed)
    return out


def build_protein_dataset(
    n_families: int = 3,
    members: int = 4,
    length: int = 200,
    divergence: float = 0.10,
    seed: int = 99,
) -> Dataset:
    """BAliBase4 stand-in: all within-family protein pairs.

    BAliBase groups multiple homologous protein sequences; the paper runs
    all pairwise alignments within each group.  We mirror the structure
    with synthetic families mutated from a consensus at ``divergence``.
    """
    gen = ProteinFamilyGenerator(
        length=length, members=members, divergence=divergence, seed=seed
    )
    pairs = tuple(gen.family_pairs(n_families))
    spec = DatasetSpec(
        name="BAliBase4-synthetic",
        read_length=length,
        technology="synthetic protein families (BAliBase4 stand-in)",
        profile=ErrorProfile(substitution=divergence),
        default_pairs=len(pairs),
        edit_threshold_frac=2.5 * divergence,
    )
    return Dataset(spec=spec, pairs=pairs)
