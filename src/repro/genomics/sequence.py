"""A biological sequence bound to an alphabet."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import AlphabetError
from repro.genomics import encoding
from repro.genomics.alphabet import Alphabet, DNA, reverse_complement


class Sequence:
    """An immutable biological sequence with cached code representations.

    The class is deliberately small: algorithms in :mod:`repro.align`
    operate either on the raw text, on alphabet codes (uint8), or on the
    QUETZAL hardware encoding, all of which are exposed here and computed
    lazily once.
    """

    __slots__ = ("_text", "alphabet", "name", "_codes", "_hw_codes")

    def __init__(self, text: str, alphabet: Alphabet = DNA, name: str = "") -> None:
        alphabet.validate(text)
        self._text = text
        self.alphabet = alphabet
        self.name = name
        self._codes: np.ndarray | None = None
        self._hw_codes: np.ndarray | None = None

    def __str__(self) -> str:
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def __getitem__(self, item) -> "Sequence | str":
        if isinstance(item, slice):
            return Sequence(self._text[item], self.alphabet, self.name)
        return self._text[item]

    def __eq__(self, other) -> bool:
        if isinstance(other, Sequence):
            return self._text == other._text and self.alphabet.name == other.alphabet.name
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._text, self.alphabet.name))

    def __repr__(self) -> str:
        shown = self._text if len(self) <= 24 else self._text[:21] + "..."
        return f"Sequence({shown!r}, alphabet={self.alphabet.name!r})"

    @property
    def text(self) -> str:
        return self._text

    @property
    def codes(self) -> np.ndarray:
        """Alphabet-index codes (uint8), cached."""
        if self._codes is None:
            self._codes = self.alphabet.codes(self._text)
            self._codes.flags.writeable = False
        return self._codes

    @property
    def hw_codes(self) -> np.ndarray:
        """QUETZAL hardware codes (2-bit extraction or 8-bit index), cached."""
        if self._hw_codes is None:
            self._hw_codes = encoding.encoded_codes(self._text, self.alphabet)
            self._hw_codes.flags.writeable = False
        return self._hw_codes

    @property
    def encoded_bits(self) -> int:
        return self.alphabet.encoded_bits

    def packed_words(self) -> np.ndarray:
        """Hardware codes packed into 64-bit words (QBUFFER layout)."""
        return encoding.pack_words(self.hw_codes, self.alphabet.encoded_bits)

    def reverse(self) -> "Sequence":
        return Sequence(self._text[::-1], self.alphabet, self.name)

    def reverse_complement(self) -> "Sequence":
        if self.alphabet.name not in ("dna", "rna"):
            raise AlphabetError(
                f"reverse complement undefined for {self.alphabet.name!r}"
            )
        return Sequence(
            reverse_complement(self._text, self.alphabet), self.alphabet, self.name
        )
