"""Genome sequence substrate: alphabets, sequences, encodings, datasets."""

from repro.genomics.alphabet import (
    Alphabet,
    DNA,
    RNA,
    DNA_N,
    PROTEIN,
)
from repro.genomics.sequence import Sequence
from repro.genomics.encoding import (
    encode_2bit,
    decode_2bit,
    pack_2bit_words,
    unpack_2bit_words,
    pack_8bit_words,
    unpack_8bit_words,
)
from repro.genomics.generator import ReadPairGenerator, ErrorProfile, SequencePair
from repro.genomics.datasets import (
    Dataset,
    DatasetSpec,
    TABLE_II_SPECS,
    build_dataset,
    build_protein_dataset,
)

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "DNA_N",
    "PROTEIN",
    "Sequence",
    "encode_2bit",
    "decode_2bit",
    "pack_2bit_words",
    "unpack_2bit_words",
    "pack_8bit_words",
    "unpack_8bit_words",
    "ReadPairGenerator",
    "ErrorProfile",
    "SequencePair",
    "Dataset",
    "DatasetSpec",
    "TABLE_II_SPECS",
    "build_dataset",
    "build_protein_dataset",
]
