"""Biological alphabets and their QUETZAL encoding widths.

QUETZAL supports two on-accelerator element encodings for sequence data
(Section IV-A): a 2-bit encoding for the four-letter DNA/RNA alphabets and
an 8-bit encoding for protein data (20 letters) or nucleotide data with
ambiguity codes (``N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlphabetError


@dataclass(frozen=True)
class Alphabet:
    """A finite symbol alphabet.

    Parameters
    ----------
    name:
        Short identifier (``"dna"``, ``"protein"``...).
    letters:
        The allowed symbols, in canonical order.  The position of a letter
        is its *code* in software representations.
    encoded_bits:
        The QUETZAL storage width for this alphabet (2 or 8).
    """

    name: str
    letters: str
    encoded_bits: int
    _index: dict = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise AlphabetError(f"duplicate letters in alphabet {self.name!r}")
        if self.encoded_bits not in (2, 8):
            raise AlphabetError("encoded_bits must be 2 or 8")
        if self.encoded_bits == 2 and len(self.letters) > 4:
            raise AlphabetError(
                f"2-bit alphabet {self.name!r} cannot hold {len(self.letters)} letters"
            )
        object.__setattr__(
            self, "_index", {c: i for i, c in enumerate(self.letters)}
        )

    def __len__(self) -> int:
        return len(self.letters)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def index_of(self, symbol: str) -> int:
        """Return the code of ``symbol``; raise :class:`AlphabetError` if absent."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(
                f"symbol {symbol!r} not in alphabet {self.name!r}"
            )

    def validate(self, text: str) -> None:
        """Raise :class:`AlphabetError` if ``text`` uses foreign symbols."""
        bad = set(text) - set(self.letters)
        if bad:
            raise AlphabetError(
                f"symbols {sorted(bad)!r} not in alphabet {self.name!r}"
            )

    def codes(self, text: str) -> np.ndarray:
        """Translate ``text`` into an array of uint8 codes."""
        self.validate(text)
        table = np.zeros(256, dtype=np.uint8)
        for i, c in enumerate(self.letters):
            table[ord(c)] = i
        return table[np.frombuffer(text.encode("ascii"), dtype=np.uint8)]

    def text(self, codes: np.ndarray) -> str:
        """Translate an array of codes back into a string."""
        codes = np.asarray(codes)
        if codes.size and int(codes.max()) >= len(self.letters):
            raise AlphabetError(
                f"code {int(codes.max())} out of range for alphabet {self.name!r}"
            )
        lut = np.frombuffer(self.letters.encode("ascii"), dtype=np.uint8)
        return lut[codes].tobytes().decode("ascii")


#: DNA: the canonical 2-bit four-letter alphabet.
DNA = Alphabet("dna", "ACGT", encoded_bits=2)

#: RNA: uracil replaces thymine; still 2-bit encodable.
RNA = Alphabet("rna", "ACGU", encoded_bits=2)

#: DNA with the ambiguous nucleotide ``N`` requires the 8-bit encoding.
DNA_N = Alphabet("dna_n", "ACGTN", encoded_bits=8)

#: The 20 standard amino acids (8-bit encoding).
PROTEIN = Alphabet("protein", "ACDEFGHIKLMNPQRSTVWY", encoded_bits=8)

_COMPLEMENT = {"dna": str.maketrans("ACGT", "TGCA"), "rna": str.maketrans("ACGU", "UGCA")}


def complement(text: str, alphabet: Alphabet = DNA) -> str:
    """Return the complement of a DNA/RNA string."""
    table = _COMPLEMENT.get(alphabet.name)
    if table is None:
        raise AlphabetError(f"complement undefined for alphabet {alphabet.name!r}")
    alphabet.validate(text)
    return text.translate(table)


def reverse_complement(text: str, alphabet: Alphabet = DNA) -> str:
    """Return the reverse complement of a DNA/RNA string."""
    return complement(text, alphabet)[::-1]
