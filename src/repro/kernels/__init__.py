"""Non-genomics kernels accelerated by QUETZAL (Section VII-F, Fig. 15b)."""

from repro.kernels.histogram import HistogramVec, HistogramQz, histogram_reference
from repro.kernels.spmv import SpmvVec, SpmvQz, CsrMatrix, spmv_reference

__all__ = [
    "HistogramVec",
    "HistogramQz",
    "histogram_reference",
    "SpmvVec",
    "SpmvQz",
    "CsrMatrix",
    "spmv_reference",
]
