"""Sparse matrix-vector multiplication, CSR (Section VII-F).

The vectorised CSR kernel streams each row's values and column indices
with unit-stride loads, but fetching ``x[col]`` is a gather — the
memory-indexed bottleneck.  The QUETZAL version stages ``x`` (or, for
vectors beyond QBUFFER capacity, one segment at a time with a
column-blocked matrix) in a QBUFFER and replaces the gather with
``qzmm<mul>`` at scratchpad latency, following Pavon et al.'s
scratchpad-vector methodology the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import QZ_ESIZE_64BIT
from repro.errors import MachineError, QuetzalError
from repro.vector.machine import VectorMachine


@dataclass(frozen=True)
class CsrMatrix:
    """A CSR sparse matrix with integer payloads (exact simulation)."""

    rows: int
    cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indptr) != self.rows + 1:
            raise MachineError("indptr length must be rows + 1")
        if len(self.indices) != len(self.data):
            raise MachineError("indices and data must align")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.cols
        ):
            raise MachineError("column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @classmethod
    def random(
        cls, rows: int, cols: int, density: float = 0.05, seed: int = 0
    ) -> "CsrMatrix":
        rng = np.random.Generator(np.random.PCG64(seed))
        nnz_per_row = max(1, int(cols * density))
        indptr = [0]
        indices = []
        for _ in range(rows):
            cols_here = np.sort(
                rng.choice(cols, size=min(nnz_per_row, cols), replace=False)
            )
            indices.extend(cols_here.tolist())
            indptr.append(len(indices))
        data = rng.integers(-4, 5, size=len(indices))
        return cls(
            rows=rows,
            cols=cols,
            indptr=np.asarray(indptr, dtype=np.int64),
            indices=np.asarray(indices, dtype=np.int64),
            data=np.asarray(data, dtype=np.int64),
        )


def spmv_reference(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Ground-truth y = A @ x."""
    x = np.asarray(x, dtype=np.int64)
    if len(x) != matrix.cols:
        raise MachineError("x length must equal matrix cols")
    y = np.zeros(matrix.rows, dtype=np.int64)
    for r in range(matrix.rows):
        lo, hi = matrix.indptr[r], matrix.indptr[r + 1]
        y[r] = int(np.dot(matrix.data[lo:hi], x[matrix.indices[lo:hi]]))
    return y


class _SpmvBase:
    name = "spmv"

    def _stage(self, machine: VectorMachine, matrix: CsrMatrix, x: np.ndarray):
        uid = id(matrix) & 0xFFFFF
        vals = machine.new_buffer(f"spmv_v{uid}", matrix.data, elem_bytes=8)
        cols = machine.new_buffer(f"spmv_c{uid}", matrix.indices, elem_bytes=4)
        xbuf = machine.new_buffer(
            f"spmv_x{uid}", np.asarray(x, dtype=np.int64), elem_bytes=8
        )
        ybuf = machine.new_buffer(
            f"spmv_y{uid}", np.zeros(matrix.rows, dtype=np.int64), elem_bytes=8
        )
        return vals, cols, xbuf, ybuf


class SpmvVec(_SpmvBase):
    """CSR SpMV with x gathered through the cache hierarchy."""

    style = "vec"

    def run(self, machine: VectorMachine, matrix: CsrMatrix, x: np.ndarray):
        m = machine
        vals, cols, xbuf, ybuf = self._stage(m, matrix, x)
        before = m.snapshot()
        lanes = m.lanes(64)
        y = np.zeros(matrix.rows, dtype=np.int64)
        for r in range(matrix.rows):
            lo, hi = int(matrix.indptr[r]), int(matrix.indptr[r + 1])
            m.scalar(3)  # row bookkeeping
            acc = 0
            for start in range(lo, hi, lanes):
                count = min(lanes, hi - start)
                act = m.whilelt(0, count, ebits=64)
                a = m.load(vals, start, ebits=64, pred=act)
                c = m.load(cols, start, ebits=64, pred=act)
                xv = m.gather(xbuf, c, pred=act)
                prod = m.mul(a, xv, pred=act)
                acc += m.reduce_add(prod, pred=act)
            y[r] = acc
            store = m.from_values([acc], ebits=64)
            m.store(ybuf, r, store, pred=m.whilelt(0, 1, ebits=64))
        m.barrier()
        delta = m.snapshot().delta(before)
        return y, delta


class SpmvQz(_SpmvBase):
    """CSR SpMV with x resident in a QBUFFER (``qzmm<mul>``)."""

    style = "qz"

    def run(self, machine: VectorMachine, matrix: CsrMatrix, x: np.ndarray):
        m = machine
        qz = m.quetzal
        if qz is None:
            raise QuetzalError("SpmvQz needs a QUETZAL unit")
        cap = qz.config.capacity_elements(64)
        if matrix.cols > cap:
            raise QuetzalError(
                f"x of {matrix.cols} elements exceeds QBUFFER capacity {cap}; "
                "block the matrix by column segments"
            )
        vals, cols, xbuf, ybuf = self._stage(m, matrix, x)
        before = m.snapshot()
        qz.clear()
        qz.qzconf(matrix.cols, 0, QZ_ESIZE_64BIT)
        qz.load_values(0, np.asarray(x, dtype=np.int64).astype(np.uint64))
        lanes = m.lanes(64)
        y = np.zeros(matrix.rows, dtype=np.int64)
        for r in range(matrix.rows):
            lo, hi = int(matrix.indptr[r]), int(matrix.indptr[r + 1])
            m.scalar(3)
            acc = 0
            for start in range(lo, hi, lanes):
                count = min(lanes, hi - start)
                act = m.whilelt(0, count, ebits=64)
                a = m.load(vals, start, ebits=64, pred=act)
                c = m.load(cols, start, ebits=64, pred=act)
                prod = qz.qzmm("mul", a, c, 0, pred=act)
                acc += m.reduce_add(prod, pred=act)
            y[r] = acc
            store = m.from_values([acc], ebits=64)
            m.store(ybuf, r, store, pred=m.whilelt(0, 1, ebits=64))
        m.barrier()
        delta = m.snapshot().delta(before)
        return y, delta
