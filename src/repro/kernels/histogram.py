"""Histogram calculation (paper Section III-E, Fig. 8).

The kernel walks an input stream of bin indices and increments the
matching table entries — pointer chasing through memory-indexed
instructions.  The VEC version pays a gather + scatter round trip per
vector of inputs; the QUETZAL version keeps the table in a QBUFFER and
updates it with ``qzmm<add>`` + ``qzstore`` at scratchpad latency.

Duplicate bins within one vector are handled the way real kernels do:
each lane adds the bin's *total* occurrences in the chunk (a conflict-
detection step whose cost scales with the duplicate count), making the
last-writer-wins scatter exact.
"""

from __future__ import annotations

import numpy as np

from repro.config import QZ_ESIZE_64BIT
from repro.errors import MachineError, QuetzalError
from repro.vector.machine import VectorMachine


def histogram_reference(values: np.ndarray, bins: int) -> np.ndarray:
    """Ground-truth histogram."""
    values = np.asarray(values)
    if values.size and (values.min() < 0 or values.max() >= bins):
        raise MachineError("histogram input out of bin range")
    return np.bincount(values, minlength=bins).astype(np.int64)


class _HistogramBase:
    """Shared input staging."""

    name = "histogram"

    def __init__(self, bins: int = 512) -> None:
        if bins < 1:
            raise MachineError("bins must be positive")
        self.bins = bins

    def _stage_input(self, machine: VectorMachine, values: np.ndarray):
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.bins):
            raise MachineError("histogram input out of bin range")
        return machine.new_buffer(
            f"hist_in{id(values) & 0xFFFFF}", values, elem_bytes=4
        )

    def _conflict_increments(self, machine, chunk: np.ndarray):
        """Per-lane increments after in-vector conflict merging."""
        dups = len(chunk) - len(np.unique(chunk))
        if dups:
            machine.scalar(3 * dups)
        return np.bincount(chunk, minlength=self.bins)[chunk]


class HistogramVec(_HistogramBase):
    """Gather/update/scatter histogram on the cache hierarchy."""

    style = "vec"

    def run(self, machine: VectorMachine, values: np.ndarray):
        m = machine
        inbuf = self._stage_input(m, values)
        table = m.new_buffer(
            f"hist_tab{id(values) & 0xFFFFF}",
            np.zeros(self.bins, dtype=np.int64),
            elem_bytes=8,
        )
        before = m.snapshot()
        lanes = m.lanes(64)
        n = len(inbuf.data)
        for start in range(0, n, lanes):
            count = min(lanes, n - start)
            act = m.whilelt(0, count, ebits=64)
            idx = m.load(inbuf, start, ebits=64, pred=act)
            inc = m.from_values(
                self._conflict_increments(m, idx.data[:count]), ebits=64
            )
            cur = m.gather(table, idx, pred=act)
            upd = m.add(cur, inc, pred=act)
            m.scatter(table, idx, upd, pred=act)
        m.barrier()
        delta = m.snapshot().delta(before)
        return table.data.copy(), delta


class HistogramQz(_HistogramBase):
    """QBUFFER-resident histogram (Fig. 8)."""

    style = "qz"

    def run(self, machine: VectorMachine, values: np.ndarray):
        m = machine
        qz = m.quetzal
        if qz is None:
            raise QuetzalError("HistogramQz needs a QUETZAL unit")
        if self.bins > qz.config.capacity_elements(64):
            raise QuetzalError(f"{self.bins} bins exceed QBUFFER 64-bit capacity")
        inbuf = self._stage_input(m, values)
        before = m.snapshot()
        qz.clear()
        qz.qzconf(self.bins, 0, QZ_ESIZE_64BIT)
        qz.load_values(0, np.zeros(self.bins, dtype=np.uint64))
        lanes = m.lanes(64)
        n = len(inbuf.data)
        for start in range(0, n, lanes):
            count = min(lanes, n - start)
            act = m.whilelt(0, count, ebits=64)
            idx = m.load(inbuf, start, ebits=64, pred=act)
            inc = m.from_values(
                self._conflict_increments(m, idx.data[:count]), ebits=64
            )
            upd = qz.qzmm("add", inc, idx, 0, pred=act)
            qz.qzstore(upd, idx, 0, pred=act)
        m.barrier()
        delta = m.snapshot().delta(before)
        result = qz.qbuf[0].words[: self.bins].astype(np.int64)
        return result, delta
