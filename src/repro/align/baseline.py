"""The autovectorised baseline cost model (the paper's normalisation unit).

The paper normalises every Fig. 13 result to each algorithm's
compiler-autovectorised build.  Compilers do not vectorise the
gather-dependent extend loops of WFA/BiWFA/SS profitably (Section II-F),
so the baseline executes the same logical work essentially scalar: one
diagonal at a time, one character compare per step.

The model is trace-driven: the instrumented scalar execution
(:mod:`repro.align.trace`) supplies exactly how many characters, diagonals
and waves the pair needs, and per-operation costs (below) convert them to
cycles.  Sequence traffic is walked through the real cache hierarchy at
line granularity, so baselines feel the same locality effects as VEC.

Cost constants (cycles) reflect a dual-issue in-order core running the
compiled scalar loop: a char step is two L1 loads + compare + increments
(~4 cycles with some ILP); per-diagonal and per-wave terms cover the
wavefront recurrence and loop management.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.interface import Implementation, PairResult
from repro.align.trace import (
    BiwfaTrace,
    SsTrace,
    WfaTrace,
    build_biwfa_trace,
    build_ss_trace,
    build_wfa_trace,
)
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine

_NEG = -(1 << 40)


@dataclass(frozen=True)
class BaselineCosts:
    """Per-operation cycle costs of the autovectorised scalar build.

    These constants are *fitted* so that the VEC implementations
    reproduce the paper's measured vectorisation benefit (Fig. 3:
    ~1.3x for short reads, ~2.5x for long reads) — reproducing compiler
    autovectorisation quality from first principles is out of scope for
    this model (EXPERIMENTS.md discusses the calibration).
    """

    char: float = 9.0
    diagonal: float = 9.0
    wave: float = 30.0
    snake_step: float = 18.0
    overlap_diagonal: float = 2.5
    traceback_step: float = 22.0
    pair_overhead: float = 300.0


DEFAULT_COSTS = BaselineCosts()


def _touch_wave_ranges(
    machine: VectorMachine, base_p: int, base_t: int, wave
) -> int:
    """Walk the sequence bytes a wave's extends touch; returns requests."""
    pre = wave.pre
    valid = pre > _NEG
    if not valid.any():
        return 0
    runs = wave.runs
    ks = np.arange(wave.lo, wave.hi + 1)
    h0 = np.where(valid, pre, 0)
    v0 = h0 - np.where(valid, ks, 0)
    touched = int((runs[valid] + 1).sum())
    line = machine.system.l1d.line_bytes
    lines: set[int] = set()
    for base, starts in ((base_p, v0), (base_t, h0)):
        lo = int(starts[valid].min())
        hi = int((starts + runs)[valid].max())
        a0 = base + max(0, lo)
        a1 = base + max(0, hi)
        lines.update(range(a0 - a0 % line, a1 + 1, line))
    for addr in sorted(lines):
        machine.mem.access_line(addr)
    machine.mem.account_extra_hits(max(0, 2 * touched - len(lines)))
    return 2 * touched


def _account(machine: VectorMachine, cycles: float, instructions: int) -> None:
    machine.account_block(
        "scalar", instructions=instructions, busy=int(round(cycles))
    )


def _wfa_trace_cost(
    machine: VectorMachine,
    trace: WfaTrace,
    costs: BaselineCosts,
    base_p: int,
    base_t: int,
    traceback: bool,
) -> None:
    chars = 0
    diagonals = 0
    for wave in trace.waves:
        valid = wave.valid_mask()
        chars += int(wave.runs.sum()) + int(valid.sum())
        diagonals += wave.width
        _touch_wave_ranges(machine, base_p, base_t, wave)
    cycles = (
        costs.pair_overhead
        + costs.wave * len(trace.waves)
        + costs.diagonal * diagonals
        + costs.char * chars
    )
    instructions = int(4 * chars + 5 * diagonals + 10 * len(trace.waves))
    if traceback:
        cycles += costs.traceback_step * trace.distance
        instructions += 15 * trace.distance
    _account(machine, cycles, instructions)


class WfaBase(Implementation):
    """Autovectorised WFA baseline."""

    algorithm = "wfa"
    style = "base"

    def __init__(
        self, costs: BaselineCosts = DEFAULT_COSTS, traceback: bool = True
    ) -> None:
        self.costs = costs
        self.traceback = traceback

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        if len(pair.pattern) == 0 or len(pair.text) == 0:
            machine.scalar(4)
            return self._wrap(machine, before, pair.max_length)
        trace = build_wfa_trace(pair.pattern, pair.text)
        base_p = machine.mem.alloc(len(pair.pattern))
        base_t = machine.mem.alloc(len(pair.text))
        _wfa_trace_cost(
            machine, trace, self.costs, base_p, base_t, self.traceback
        )
        return self._wrap(machine, before, trace.distance)


class BiwfaBase(Implementation):
    """Autovectorised BiWFA baseline."""

    algorithm = "biwfa"
    style = "base"

    def __init__(self, costs: BaselineCosts = DEFAULT_COSTS) -> None:
        self.costs = costs

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        if len(pair.pattern) == 0 or len(pair.text) == 0:
            machine.scalar(4)
            return self._wrap(machine, before, pair.max_length)
        trace: BiwfaTrace = build_biwfa_trace(pair.pattern, pair.text)
        base_p = machine.mem.alloc(len(pair.pattern))
        base_t = machine.mem.alloc(len(pair.text))
        chars = 0
        diagonals = 0
        waves = trace.fwd_waves + trace.bwd_waves
        for wave in waves:
            valid = wave.valid_mask()
            chars += int(wave.runs.sum()) + int(valid.sum())
            diagonals += wave.width
            _touch_wave_ranges(machine, base_p, base_t, wave)
        overlap_work = sum(w.width for w in trace.fwd_waves)
        costs = self.costs
        cycles = (
            costs.pair_overhead
            + costs.wave * len(waves)
            + costs.diagonal * diagonals
            + costs.char * chars
            + costs.overlap_diagonal * overlap_work
        )
        instructions = int(4 * chars + 5 * diagonals + 2 * overlap_work)
        _account(machine, cycles, instructions)
        return self._wrap(machine, before, trace.distance)


class SsBase(Implementation):
    """Autovectorised SneakySnake baseline."""

    algorithm = "ss"
    style = "base"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        costs: BaselineCosts = DEFAULT_COSTS,
    ) -> None:
        if threshold is not None and threshold < 0:
            raise AlignmentError("threshold must be non-negative")
        self.threshold = threshold
        self.threshold_frac = threshold_frac
        self.costs = costs

    def threshold_for(self, pair: SequencePair) -> int:
        if self.threshold is not None:
            return self.threshold
        return max(1, int(len(pair.pattern) * self.threshold_frac))

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        threshold = self.threshold_for(pair)
        trace: SsTrace = build_ss_trace(pair.pattern, pair.text, threshold)
        base_p = machine.mem.alloc(max(1, len(pair.pattern)))
        base_t = machine.mem.alloc(max(1, len(pair.text)))
        chars = trace.total_runs_chars + trace.total_diagonals
        costs = self.costs
        cycles = (
            costs.pair_overhead
            + costs.snake_step * len(trace.steps)
            + costs.diagonal * trace.total_diagonals
            + costs.char * chars
        )
        instructions = int(4 * chars + 5 * trace.total_diagonals)
        line = machine.system.l1d.line_bytes
        for step in trace.steps:
            span = int(step.runs.max()) + 1 if step.runs.size else 1
            a0 = base_p + step.col
            for addr in range(a0 - a0 % line, a0 + span + 1, line):
                machine.mem.access_line(addr)
            a1 = base_t + max(0, step.col - trace.threshold)
            end = base_t + step.col + span + trace.threshold
            for addr in range(a1 - a1 % line, end + 1, line):
                machine.mem.access_line(addr)
        machine.mem.account_extra_hits(2 * chars)
        _account(machine, cycles, instructions)
        return self._wrap(machine, before, trace.result)
