"""Bidirectional WFA (BiWFA) — O(s) memory exact alignment (Section II-B).

Forward wavefronts run from (0,0); backward wavefronts are forward
wavefronts over the reversed sequences.  Waves alternate (the side with
the lower score advances) until they overlap on a diagonal, at which point
the edit distance is ``s_forward + s_backward``.  The full transcript is
recovered by recursing on the two halves split at the overlap breakpoint,
keeping memory linear in the score as in the BiWFA paper.

Diagonal mapping: a forward diagonal ``k`` corresponds to the backward
diagonal ``z - k`` with ``z = n - m``; overlap on ``k`` means
``f_offset + b_offset >= n``.
"""

from __future__ import annotations

import numpy as np

from repro.align.types import Alignment, Cigar
from repro.align.wavefront import (
    EditWavefront,
    _codes,
    _extend_wave,
    _next_wave,
    wfa_edit_align,
)
from repro.errors import AlignmentError

_NEG = -(1 << 40)
#: Below this size, recursion falls back to plain WFA with traceback.
_BASE_CASE = 64


def _overlap(
    fwd: EditWavefront, bwd: EditWavefront, n: int, z: int
) -> tuple[int, int] | None:
    """First diagonal where the waves meet; returns (k, forward offset)."""
    for k in range(fwd.lo, fwd.hi + 1):
        fo = fwd.get(k)
        if fo <= _NEG:
            continue
        bo = bwd.get(z - k)
        if bo <= _NEG:
            continue
        if fo + bo >= n:
            return k, fo
    return None


def biwfa_edit_distance(
    pattern, text, with_breakpoint: bool = False
):
    """Edit distance with O(s) live wavefront state.

    With ``with_breakpoint``, also returns ``(s_fwd, k, offset)`` — a cell
    on an optimal path, used for divide-and-conquer traceback.
    """
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    z = n - m
    fwd = EditWavefront(0, 0, np.zeros(1, dtype=np.int64))
    _extend_wave(fwd, p, t)
    pr, tr = p[::-1].copy(), t[::-1].copy()
    bwd = EditWavefront(0, 0, np.zeros(1, dtype=np.int64))
    _extend_wave(bwd, pr, tr)
    s_f = s_b = 0
    hit = _overlap(fwd, bwd, n, z)
    while hit is None:
        if s_f <= s_b:
            fwd = _next_wave(fwd, m, n)
            _extend_wave(fwd, p, t)
            s_f += 1
        else:
            bwd = _next_wave(bwd, m, n)
            _extend_wave(bwd, pr, tr)
            s_b += 1
        hit = _overlap(fwd, bwd, n, z)
    distance = s_f + s_b
    if not with_breakpoint:
        return distance
    k, offset = hit
    return distance, (s_f, k, offset)


def biwfa_edit_align(pattern, text, _depth: int = 0) -> Alignment:
    """Optimal edit transcript with BiWFA's divide-and-conquer recursion."""
    p_text, t_text = str(pattern), str(text)
    m, n = len(p_text), len(t_text)
    if _depth > 64:  # pragma: no cover - recursion guard
        raise AlignmentError("BiWFA recursion failed to converge")
    if m == 0:
        return Alignment(n, Cigar([(n, "I")]), algorithm="biwfa-edit")
    if n == 0:
        return Alignment(m, Cigar([(m, "D")]), algorithm="biwfa-edit")
    if m <= _BASE_CASE or n <= _BASE_CASE:
        base = wfa_edit_align(p_text, t_text)
        return Alignment(base.score, base.cigar, algorithm="biwfa-edit")
    distance, (s_f, k, offset) = biwfa_edit_distance(
        p_text, t_text, with_breakpoint=True
    )
    if distance == 0:
        return Alignment(0, Cigar([(n, "M")]), algorithm="biwfa-edit")
    if distance <= 1:
        # With d <= 1 one wave side has score 0 and the breakpoint can
        # degenerate to a corner; plain WFA is O(n) here anyway.
        base = wfa_edit_align(p_text, t_text)
        return Alignment(base.score, base.cigar, algorithm="biwfa-edit")
    h = min(offset, n)
    v = h - k
    if not (0 <= v <= m and 0 <= h <= n):  # pragma: no cover - invariant
        raise AlignmentError(f"BiWFA breakpoint out of range: ({v}, {h})")
    if (v, h) in ((0, 0), (m, n)):  # pragma: no cover - invariant
        # The alternation schedule (s_f ~ d/2 < d) makes a corner split
        # impossible for d >= 2; guard against silent infinite recursion.
        raise AlignmentError("BiWFA breakpoint degenerated to a corner")
    left = biwfa_edit_align(p_text[:v], t_text[:h], _depth + 1)
    right = biwfa_edit_align(p_text[v:], t_text[h:], _depth + 1)
    if left.score + right.score != distance:
        # The breakpoint cell always lies on *an* optimal path; if scores
        # disagree the recursion found a cheaper split, which is impossible
        # for a correct breakpoint.
        raise AlignmentError(
            f"BiWFA split mismatch: {left.score}+{right.score} != {distance}"
        )
    cigar = Cigar(left.cigar.ops + right.cigar.ops)
    return Alignment(distance, cigar, algorithm="biwfa-edit")
