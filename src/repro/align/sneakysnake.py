"""SneakySnake edit-distance approximation (Section II-C, Fig. 1c).

SneakySnake builds a conceptual grid of ``2E+1`` diagonal rows (row ``k``
holds matches of ``P[j]`` against ``T[j+k]``) and greedily chains the
longest available exact-match run from the current column, paying one edit
to cross each obstacle.  The resulting edit count is a *lower bound* on
the true edit distance, so rejecting a pair whenever the count exceeds the
threshold ``E`` never discards a pair that actually aligns within ``E``
edits (no false negatives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.wavefront import lcp, _codes
from repro.errors import AlignmentError


@dataclass(frozen=True)
class SneakySnakeResult:
    """Filter verdict for one pair."""

    accepted: bool
    edits: int
    threshold: int

    def __bool__(self) -> bool:
        return self.accepted


def snake_run_length(
    p: np.ndarray, t: np.ndarray, col: int, k: int
) -> int:
    """Length of the exact-match run on diagonal row ``k`` from ``col``."""
    if col + k < 0:
        return 0
    return lcp(p, t, col, col + k)


def sneakysnake_filter(pattern, text, threshold: int) -> SneakySnakeResult:
    """Greedy Single-Net-Play over diagonals ``[-E, E]``.

    Accepts iff the pair needs at most ``threshold`` obstacle crossings to
    traverse the whole pattern.
    """
    if threshold < 0:
        raise AlignmentError(f"threshold must be non-negative: {threshold}")
    p, t = _codes(pattern), _codes(text)
    n = len(p)
    if n == 0:
        return SneakySnakeResult(accepted=True, edits=0, threshold=threshold)
    col = 0
    edits = 0
    while col < n:
        best = 0
        for k in range(-threshold, threshold + 1):
            run = snake_run_length(p, t, col, k)
            if run > best:
                best = run
                if col + best >= n:
                    break
        col += best
        if col >= n:
            break
        # Cross one obstacle: costs one edit and one column.
        edits += 1
        col += 1
        if edits > threshold:
            return SneakySnakeResult(accepted=False, edits=edits, threshold=threshold)
    return SneakySnakeResult(accepted=edits <= threshold, edits=edits, threshold=threshold)
