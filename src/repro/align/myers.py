"""Myers' bit-parallel edit distance (Myers 1999).

The classic bit-vector formulation of the NW edit DP: one column of the
table is encoded as delta bit-vectors (``Pv``/``Mv``) and a whole column
transition costs a constant number of 64-bit operations.  This is the
algorithmic family behind bitap-style accelerators such as GenASM (the
paper's Table IV comparator), included here both as another classical ASM
algorithm the framework covers and as an independent oracle for the DP
implementations.

Supports arbitrary pattern lengths via the standard block (multi-word)
extension; the score is the exact Levenshtein distance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError

_W = 64
_ONES = (1 << _W) - 1


def _peq_tables(p_codes: np.ndarray, alphabet_size: int) -> list[list[int]]:
    """Per-symbol match bit-masks, one 64-bit word per pattern block."""
    blocks = -(-len(p_codes) // _W)
    peq = [[0] * blocks for _ in range(alphabet_size)]
    for i, code in enumerate(p_codes.tolist()):
        peq[code][i // _W] |= 1 << (i % _W)
    return peq


def myers_edit_distance(pattern, text) -> int:
    """Exact Levenshtein distance, O(n * ceil(m/64)) word operations."""
    from repro.align.wavefront import _codes

    p = _codes(pattern)
    t = _codes(text)
    m, n = len(p), len(t)
    if m == 0:
        return n
    if n == 0:
        return m
    codes = np.unique(np.concatenate([p, t]))
    remap = {int(c): i for i, c in enumerate(codes.tolist())}
    p_m = np.asarray([remap[int(c)] for c in p])
    t_m = np.asarray([remap[int(c)] for c in t])
    peq = _peq_tables(p_m, len(codes))

    blocks = -(-m // _W)
    pv = [_ONES] * blocks
    mv = [0] * blocks
    score = m
    last_bit = 1 << ((m - 1) % _W)
    for c in t_m.tolist():
        carry_h_pos = 1  # the +1 entering from the text boundary row
        carry_h_neg = 0
        for b in range(blocks):
            eq = peq[c][b]
            pvb, mvb = pv[b], mv[b]
            eq |= carry_h_neg
            xv = eq | mvb
            xh = (((eq & pvb) + pvb) ^ pvb) | eq
            ph = mvb | (~(xh | pvb) & _ONES)
            mh = pvb & xh
            if b == blocks - 1:
                if ph & last_bit:
                    score += 1
                elif mh & last_bit:
                    score -= 1
            next_carry_pos = (ph >> (_W - 1)) & 1
            next_carry_neg = (mh >> (_W - 1)) & 1
            ph = ((ph << 1) | carry_h_pos) & _ONES
            mh = ((mh << 1) | carry_h_neg) & _ONES
            pv[b] = mh | (~(xv | ph) & _ONES)
            mv[b] = ph & xv
            carry_h_pos, carry_h_neg = next_carry_pos, next_carry_neg
    return score


def myers_within(pattern, text, threshold: int) -> bool:
    """Convenience: is the edit distance at most ``threshold``?"""
    if threshold < 0:
        raise AlignmentError(f"threshold must be non-negative: {threshold}")
    return myers_edit_distance(pattern, text) <= threshold
