"""Algorithm traces: the exact work an algorithm performs on one pair.

A *trace* records, for one input pair, every extend/compare step a scalar
reference execution performs (wavefront shapes, match-run lengths, snake
steps).  All implementation styles consume the same trace:

* the autovectorised **baseline** converts it to cycles with a per-char
  scalar cost model;
* the **VEC/QUETZAL fast paths** convert it to per-iteration active-lane
  counts and replay measured loop-body costs, avoiding per-character
  Python execution on long reads (tests pin fast == slow on small inputs);
* the **instruction-level paths** do not need it (they recompute), but are
  cross-checked against the trace's functional outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.sneakysnake import SneakySnakeResult
from repro.align.wavefront import EditWavefront, _codes, _next_wave, lcp
from repro.errors import AlignmentError

_NEG = -(1 << 40)


@dataclass
class WaveStep:
    """One wavefront of an edit-WFA execution, before and after extension."""

    lo: int
    hi: int
    #: Offsets entering the extend step (post-recurrence), _NEG when invalid.
    pre: np.ndarray
    #: Exact-match run each diagonal extends by (0 for invalid diagonals).
    runs: np.ndarray

    @property
    def post(self) -> np.ndarray:
        return np.where(self.pre > _NEG, self.pre + self.runs, self.pre)

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def valid_mask(self) -> np.ndarray:
        return self.pre > _NEG


@dataclass
class WfaTrace:
    """Full edit-WFA execution trace for one pair."""

    m: int
    n: int
    distance: int
    waves: list[WaveStep] = field(default_factory=list)

    @property
    def total_diagonals(self) -> int:
        return sum(w.width for w in self.waves)

    @property
    def total_extend_chars(self) -> int:
        return int(sum(w.runs.sum() for w in self.waves))


def _extend_runs(
    wave: EditWavefront, p: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Per-diagonal match runs, also applying them to ``wave`` in place."""
    runs = np.zeros(wave.width if hasattr(wave, "width") else wave.hi - wave.lo + 1,
                    dtype=np.int64)
    for k in range(wave.lo, wave.hi + 1):
        h = wave.get(k)
        if h <= _NEG:
            continue
        run = lcp(p, t, h - k, h)
        runs[k - wave.lo] = run
        if run:
            wave.set(k, h + run)
    return runs


def build_wfa_trace(pattern, text, max_score: int | None = None) -> WfaTrace:
    """Run scalar edit-WFA, recording every wave's shape and runs."""
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    k_end = n - m
    wave = EditWavefront(0, 0, np.zeros(1, dtype=np.int64))
    steps: list[WaveStep] = []
    pre = wave.offsets.copy()
    runs = _extend_runs(wave, p, t)
    steps.append(WaveStep(wave.lo, wave.hi, pre, runs))
    s = 0
    while wave.get(k_end) < n:
        if max_score is not None and s >= max_score:
            raise AlignmentError(f"WFA trace exceeded max_score={max_score}")
        wave = _next_wave(wave, m, n)
        pre = wave.offsets.copy()
        runs = _extend_runs(wave, p, t)
        steps.append(WaveStep(wave.lo, wave.hi, pre, runs))
        s += 1
    return WfaTrace(m=m, n=n, distance=s, waves=steps)


@dataclass
class BiwfaTrace:
    """Forward + backward wave history of a BiWFA execution."""

    m: int
    n: int
    distance: int
    fwd_waves: list[WaveStep]
    bwd_waves: list[WaveStep]

    @property
    def total_diagonals(self) -> int:
        return sum(w.width for w in self.fwd_waves) + sum(
            w.width for w in self.bwd_waves
        )


def build_biwfa_trace(pattern, text) -> BiwfaTrace:
    """Run scalar BiWFA (alternating waves), recording both directions."""
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    z = n - m
    pr, tr = p[::-1].copy(), t[::-1].copy()

    def one(seq_p, seq_t):
        wave = EditWavefront(0, 0, np.zeros(1, dtype=np.int64))
        pre = wave.offsets.copy()
        runs = _extend_runs(wave, seq_p, seq_t)
        return wave, [WaveStep(wave.lo, wave.hi, pre, runs)]

    fwd, fwd_steps = one(p, t)
    bwd, bwd_steps = one(pr, tr)
    s_f = s_b = 0

    def overlap() -> bool:
        for k in range(fwd.lo, fwd.hi + 1):
            fo = fwd.get(k)
            if fo <= _NEG:
                continue
            bo = bwd.get(z - k)
            if bo > _NEG and fo + bo >= n:
                return True
        return False

    while not overlap():
        if s_f <= s_b:
            fwd = _next_wave(fwd, m, n)
            pre = fwd.offsets.copy()
            runs = _extend_runs(fwd, p, t)
            fwd_steps.append(WaveStep(fwd.lo, fwd.hi, pre, runs))
            s_f += 1
        else:
            bwd = _next_wave(bwd, m, n)
            pre = bwd.offsets.copy()
            runs = _extend_runs(bwd, pr, tr)
            bwd_steps.append(WaveStep(bwd.lo, bwd.hi, pre, runs))
            s_b += 1
    return BiwfaTrace(
        m=m, n=n, distance=s_f + s_b, fwd_waves=fwd_steps, bwd_waves=bwd_steps
    )


@dataclass
class SnakeStep:
    """One greedy step of SneakySnake: runs for all diagonals from ``col``."""

    col: int
    #: Match-run length per diagonal, ordered k = -E .. +E.
    runs: np.ndarray

    @property
    def best(self) -> int:
        return int(self.runs.max()) if self.runs.size else 0


@dataclass
class SsTrace:
    """Full SneakySnake execution trace for one pair."""

    n: int
    threshold: int
    result: SneakySnakeResult
    steps: list[SnakeStep] = field(default_factory=list)

    @property
    def total_runs_chars(self) -> int:
        return int(sum(s.runs.sum() for s in self.steps))

    @property
    def total_diagonals(self) -> int:
        return sum(len(s.runs) for s in self.steps)


def build_ss_trace(pattern, text, threshold: int) -> SsTrace:
    """Run scalar SneakySnake, recording each step's per-diagonal runs.

    Unlike the early-exiting scalar filter, the trace computes *all*
    diagonal runs per step (what the vectorised versions do), so every
    style consumes identical work items.  The verdict is identical.
    """
    if threshold < 0:
        raise AlignmentError(f"threshold must be non-negative: {threshold}")
    p, t = _codes(pattern), _codes(text)
    n = len(p)
    ks = np.arange(-threshold, threshold + 1)
    steps: list[SnakeStep] = []
    col = 0
    edits = 0
    rejected = False
    while col < n:
        runs = np.zeros(len(ks), dtype=np.int64)
        for i, k in enumerate(ks):
            if col + k < 0:
                continue
            runs[i] = lcp(p, t, col, col + int(k))
        steps.append(SnakeStep(col=col, runs=runs))
        col += int(runs.max()) if runs.size else 0
        if col >= n:
            break
        edits += 1
        col += 1
        if edits > threshold:
            rejected = True
            break
    result = SneakySnakeResult(
        accepted=not rejected and edits <= threshold,
        edits=edits,
        threshold=threshold,
    )
    return SsTrace(n=n, threshold=threshold, result=result, steps=steps)
