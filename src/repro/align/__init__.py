"""Alignment and edit-distance algorithms: scalar, vectorized (VEC), QUETZAL."""

from repro.align.types import Alignment, Cigar, Penalties
from repro.align.needleman_wunsch import nw_edit_align, nw_edit_distance, nw_score_matrix
from repro.align.smith_waterman import (
    sw_gotoh_local,
    nw_gotoh_global,
    banded_global_affine,
    adaptive_banded_affine,
)
from repro.align.wavefront import (
    wfa_affine_align,
    wfa_affine_score,
    wfa_edit_align,
    wfa_edit_distance,
)
from repro.align.biwfa import biwfa_edit_distance, biwfa_edit_align
from repro.align.sneakysnake import sneakysnake_filter, SneakySnakeResult
from repro.align.myers import myers_edit_distance, myers_within
from repro.align.shouji import shouji_filter, ShoujiResult

__all__ = [
    "Alignment",
    "Cigar",
    "Penalties",
    "nw_edit_align",
    "nw_edit_distance",
    "nw_score_matrix",
    "sw_gotoh_local",
    "nw_gotoh_global",
    "banded_global_affine",
    "adaptive_banded_affine",
    "wfa_edit_align",
    "wfa_edit_distance",
    "wfa_affine_score",
    "wfa_affine_align",
    "biwfa_edit_distance",
    "biwfa_edit_align",
    "sneakysnake_filter",
    "SneakySnakeResult",
    "myers_edit_distance",
    "myers_within",
    "shouji_filter",
    "ShoujiResult",
]
