"""Smith-Waterman-Gotoh affine-gap alignment, plus banded variants.

These are the *classical DP* algorithms of the paper's use case 3:

* :func:`sw_gotoh_local` — local affine-gap alignment (Smith-Waterman-Gotoh),
* :func:`nw_gotoh_global` — global affine-gap alignment (cost-minimising),
* :func:`banded_global_affine` — fixed-band global affine DP (the ksw2-style
  heuristic: only cells within ``band`` of the main diagonal are evaluated),
* :func:`adaptive_banded_affine` — the adaptive band that recentres on the
  best cell of each row (Suzuki-Kasahara style).

Costs follow :class:`~repro.align.types.Penalties` (positive costs, lower
is better) for the global variants; the local variant maximises a
similarity score as is conventional for SW.
"""

from __future__ import annotations

import numpy as np

from repro.align.types import Penalties
from repro.errors import AlignmentError

_INF = np.int64(1 << 40)


def _codes(seq) -> np.ndarray:
    if hasattr(seq, "codes"):
        return np.asarray(seq.codes, dtype=np.int64)
    return np.frombuffer(str(seq).encode("ascii"), dtype=np.uint8).astype(np.int64)


def sw_gotoh_local(
    pattern,
    text,
    match_score: int = 2,
    mismatch_score: int = -4,
    gap_open: int = 4,
    gap_extend: int = 2,
) -> int:
    """Best local alignment *score* (maximising; 0 floor).

    Row-vectorised Gotoh recurrence with separate E (gap in pattern) and
    F (gap in text) matrices.
    """
    if match_score <= 0 or mismatch_score >= 0:
        raise AlignmentError("local SW expects match_score>0 and mismatch_score<0")
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    if n == 0 or m == 0:
        return 0
    h_prev = np.zeros(n + 1, dtype=np.int64)
    e_prev = np.full(n + 1, -_INF, dtype=np.int64)
    best = 0
    open_total = gap_open + gap_extend
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        sub = np.where(t == p[i - 1], match_score, mismatch_score)
        e_row = np.maximum(e_prev[1:] - gap_extend, h_prev[1:] - open_total)
        cand = np.maximum(h_prev[:-1] + sub, e_row)
        cand = np.maximum(cand, 0)
        # F (gap along the row): f[j] = max_{k<j}(cand[k] - open - ext*(j-k))
        # = max_{k<j}(cand[k] + ext*k) - open - ext*j, a running maximum.
        run = np.maximum.accumulate(cand + gap_extend * j_idx)
        f_row = (
            np.concatenate(([-_INF], run[:-1])) - gap_open - gap_extend * j_idx
        )
        h_row = np.maximum(np.maximum(cand, f_row), 0)
        best = max(best, int(h_row.max()))
        h_prev = np.concatenate(([0], h_row))
        e_prev = np.concatenate(([-_INF], e_row))
    return best


def _gotoh_cost_rows(p: np.ndarray, t: np.ndarray, pen: Penalties):
    """Yield (h_row, i) for the cost-minimising global Gotoh DP."""
    n = len(t)
    open_total = pen.gap_open + pen.gap_extend
    h_prev = np.concatenate(
        ([0], pen.gap_open + pen.gap_extend * np.arange(1, n + 1))
    ).astype(np.int64)
    e_prev = np.full(n + 1, _INF, dtype=np.int64)  # gap in text (vertical)
    yield h_prev, 0
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, len(p) + 1):
        sub = np.where(t == p[i - 1], pen.match, pen.mismatch)
        e_row = np.minimum(e_prev[1:] + pen.gap_extend, h_prev[1:] + open_total)
        cand = np.minimum(h_prev[:-1] + sub, e_row)
        left0 = pen.gap_open + pen.gap_extend * i
        # F closure: f[j] = min_{k<j}(h_nonF[k] + open + ext*(j-k)); paths
        # through two consecutive horizontal gaps are dominated by one, so
        # only non-F candidates (cand, and the column-0 cell) need enter.
        best = np.concatenate(([left0], cand))
        closure = np.minimum.accumulate(best - pen.gap_extend * np.arange(n + 1))
        f_row = closure[:-1] + pen.gap_extend * j_idx + pen.gap_open
        h_row = np.minimum(cand, f_row)
        h_full = np.concatenate(([left0], h_row))
        e_full = np.concatenate(([_INF], e_row))
        yield h_full, i
        h_prev, e_prev = h_full, e_full


def nw_gotoh_global(pattern, text, penalties: Penalties | None = None) -> int:
    """Optimal global affine-gap alignment cost (Gotoh)."""
    pen = penalties or Penalties()
    p, t = _codes(pattern), _codes(text)
    if len(p) == 0:
        return pen.gap_open + pen.gap_extend * len(t) if len(t) else 0
    if len(t) == 0:
        return pen.gap_open + pen.gap_extend * len(p)
    last = None
    for h_row, _ in _gotoh_cost_rows(p, t, pen):
        last = h_row
    return int(last[-1])


def banded_global_affine(
    pattern, text, band: int, penalties: Penalties | None = None
) -> int | None:
    """ksw2-style banded global affine alignment.

    Only cells with ``|j - i| <= band`` are evaluated.  Returns the
    alignment cost, or ``None`` when the optimal path escapes the band
    (the heuristic failure mode described in Section II-A).
    """
    if band < 0:
        raise AlignmentError("band must be non-negative")
    pen = penalties or Penalties()
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    if abs(n - m) > band:
        return None
    open_total = pen.gap_open + pen.gap_extend
    cap = _INF // 4  # clamp ceiling so +penalty arithmetic cannot wrap
    h_prev = np.full(n + 1, _INF, dtype=np.int64)
    e_prev = np.full(n + 1, _INF, dtype=np.int64)
    width = min(band, n)
    h_prev[0] = 0
    if width:
        h_prev[1 : width + 1] = pen.gap_open + pen.gap_extend * np.arange(1, width + 1)
    j_all = np.arange(0, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        lo = max(0, i - band)
        hi = min(n, i + band)
        h_row = np.full(n + 1, _INF, dtype=np.int64)
        e_row = np.full(n + 1, _INF, dtype=np.int64)
        if lo == 0:
            h_row[0] = pen.gap_open + pen.gap_extend * i
        j0 = max(1, lo)
        if j0 <= hi:
            js = j_all[j0 : hi + 1]
            sub = np.where(t[j0 - 1 : hi] == p[i - 1], pen.match, pen.mismatch)
            e_w = np.minimum(
                e_prev[j0 : hi + 1] + pen.gap_extend,
                h_prev[j0 : hi + 1] + open_total,
            )
            e_w = np.minimum(e_w, cap)
            cand = np.minimum(h_prev[j0 - 1 : hi] + sub, e_w)
            cand = np.minimum(cand, cap)
            # F closure within the window: f[j] = min over k < j of
            # (hcand[k] + open + ext*(j-k)), seeded by h_row[j0-1].
            seed = min(int(h_row[j0 - 1]), cap)
            best = np.concatenate(([seed], cand))
            ks = np.concatenate(([j0 - 1], js))
            closure = np.minimum.accumulate(best - pen.gap_extend * ks)
            f_w = closure[:-1] + pen.gap_extend * js + pen.gap_open
            h_w = np.minimum(cand, f_w)
            e_row[j0 : hi + 1] = e_w
            h_row[j0 : hi + 1] = np.minimum(h_w, _INF)
        h_prev, e_prev = h_row, e_row
    result = int(h_prev[n])
    return None if result >= cap else result


def adaptive_banded_affine(
    pattern, text, band: int, penalties: Penalties | None = None
) -> int | None:
    """Adaptive-band affine DP: the band recentres on each row's best cell.

    A fixed-width window slides to follow the locally optimal path
    (Suzuki-Kasahara adaptive banding, used by modern long-read aligners).
    Returns ``None`` if the end cell falls outside the final window.
    """
    if band < 1:
        raise AlignmentError("band must be positive")
    pen = penalties or Penalties()
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    open_total = pen.gap_open + pen.gap_extend
    center = 0
    h_prev = np.full(n + 1, _INF, dtype=np.int64)
    e_prev = np.full(n + 1, _INF, dtype=np.int64)
    h_prev[0] = 0
    width = min(band, n)
    if width:
        h_prev[1 : width + 1] = pen.gap_open + pen.gap_extend * np.arange(1, width + 1)
    for i in range(1, m + 1):
        lo = max(0, center - band + i)
        lo = max(0, min(lo, n - 1))
        hi = min(n, lo + 2 * band)
        h_row = np.full(n + 1, _INF, dtype=np.int64)
        e_row = np.full(n + 1, _INF, dtype=np.int64)
        if lo == 0:
            h_row[0] = pen.gap_open + pen.gap_extend * i
        f = _INF
        for j in range(max(1, lo), hi + 1):
            sub = pen.match if p[i - 1] == t[j - 1] else pen.mismatch
            e = min(e_prev[j] + pen.gap_extend, h_prev[j] + open_total)
            f = min(f + pen.gap_extend, h_row[j - 1] + open_total)
            h = min(h_prev[j - 1] + sub, e, f)
            e_row[j] = e
            h_row[j] = h
        window = h_row[max(1, lo) : hi + 1]
        if window.size:
            center = int(np.argmin(window)) + max(1, lo) - i
        h_prev, e_prev = h_row, e_row
    result = int(h_prev[n])
    return None if result >= _INF else result
