"""Needleman-Wunsch global alignment (the classic full-table DP, Fig. 1a).

Two flavours:

* :func:`nw_edit_align` / :func:`nw_edit_distance` — unit-cost edit
  distance with traceback, matching the paper's Fig. 1a example (each cell
  holds the number of edits to align the prefixes);
* :func:`nw_score_matrix` — linear-gap score DP with configurable
  match/mismatch/gap costs (the parasail-style scored variant).

The row loop is numpy-vectorised; traceback re-derives moves from the
stored matrix, so memory is O(n*m).
"""

from __future__ import annotations

import numpy as np

from repro.align.types import Alignment, Cigar
from repro.errors import AlignmentError


def _codes(seq) -> np.ndarray:
    if hasattr(seq, "codes"):
        return np.asarray(seq.codes, dtype=np.int64)
    text = str(seq)
    return np.frombuffer(text.encode("ascii"), dtype=np.uint8).astype(np.int64)


def nw_edit_matrix(pattern, text) -> np.ndarray:
    """The full (m+1) x (n+1) edit-distance DP table."""
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    dp = np.zeros((m + 1, n + 1), dtype=np.int32)
    dp[0, :] = np.arange(n + 1)
    dp[:, 0] = np.arange(m + 1)
    for i in range(1, m + 1):
        sub = dp[i - 1, :-1] + (t != p[i - 1])
        # dp[i, j] = min(sub[j-1], dp[i-1, j] + 1, dp[i, j-1] + 1); the
        # last term is a prefix dependency, resolved with a scan.
        cand = np.minimum(sub, dp[i - 1, 1:] + 1)
        row = dp[i]
        acc = row[0]
        out = np.empty(n, dtype=np.int32)
        for j in range(n):
            acc = min(cand[j], acc + 1)
            out[j] = acc
        row[1:] = out
    return dp


def nw_edit_matrix_fast(pattern, text) -> np.ndarray:
    """Same table computed without the per-row Python scan.

    Uses the classic trick: after ``cand = min(diag+sub, up+1)``, the
    horizontal closure ``dp[j] = min(cand[k] + (j-k))`` is a running
    minimum of ``cand - j`` computed with ``np.minimum.accumulate``.
    """
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    dp = np.zeros((m + 1, n + 1), dtype=np.int32)
    dp[0, :] = np.arange(n + 1)
    dp[:, 0] = np.arange(m + 1)
    j_idx = np.arange(1, n + 1, dtype=np.int32)
    for i in range(1, m + 1):
        cand = np.minimum(
            dp[i - 1, :-1] + (t != p[i - 1]), dp[i - 1, 1:] + 1
        ).astype(np.int32)
        best = np.concatenate(([dp[i, 0]], cand))
        closure = np.minimum.accumulate(best - np.arange(n + 1))
        dp[i, 1:] = closure[1:] + j_idx
    return dp


def nw_edit_distance(pattern, text) -> int:
    """Levenshtein distance via the full DP table."""
    return int(nw_edit_matrix_fast(pattern, text)[-1, -1])


def nw_edit_align(pattern, text) -> Alignment:
    """Optimal unit-cost global alignment with transcript."""
    p, t = _codes(pattern), _codes(text)
    dp = nw_edit_matrix_fast(pattern, text)
    i, j = len(p), len(t)
    ops: list[str] = []
    while i > 0 or j > 0:
        here = dp[i, j]
        if i > 0 and j > 0 and dp[i - 1, j - 1] + (p[i - 1] != t[j - 1]) == here:
            ops.append("M" if p[i - 1] == t[j - 1] else "X")
            i -= 1
            j -= 1
        elif i > 0 and dp[i - 1, j] + 1 == here:
            ops.append("D")
            i -= 1
        elif j > 0 and dp[i, j - 1] + 1 == here:
            ops.append("I")
            j -= 1
        else:  # pragma: no cover - table invariant violated
            raise AlignmentError("NW traceback lost the optimal path")
    cigar = Cigar.from_ops_string("".join(reversed(ops)))
    return Alignment(score=int(dp[-1, -1]), cigar=cigar, algorithm="nw-edit")


def nw_score_matrix(
    pattern, text, match: int = 0, mismatch: int = 4, gap: int = 2
) -> np.ndarray:
    """Linear-gap *cost* DP table (lower is better; parasail-style NW)."""
    if mismatch <= match or gap <= 0:
        raise AlignmentError("need mismatch > match and gap > 0")
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    dp = np.zeros((m + 1, n + 1), dtype=np.int64)
    dp[0, :] = gap * np.arange(n + 1)
    dp[:, 0] = gap * np.arange(m + 1)
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        sub = np.where(t == p[i - 1], match, mismatch)
        cand = np.minimum(dp[i - 1, :-1] + sub, dp[i - 1, 1:] + gap)
        best = np.concatenate(([dp[i, 0]], cand))
        closure = np.minimum.accumulate(best - gap * np.arange(n + 1))
        dp[i, 1:] = closure[1:] + gap * j_idx
    return dp


def nw_score(pattern, text, match: int = 0, mismatch: int = 4, gap: int = 2) -> int:
    """Optimal linear-gap alignment cost."""
    return int(nw_score_matrix(pattern, text, match, mismatch, gap)[-1, -1])
