"""Common interface for simulated algorithm implementations.

Every implementation style of every algorithm exposes the same surface so
the evaluation runner (:mod:`repro.eval.runner`) can sweep algorithms x
styles x datasets uniformly:

* ``base`` — the compiler-autovectorised baseline the paper normalises to;
* ``vec``  — the hand-written SVE-intrinsics version (VEC in Fig. 13);
* ``qz``   — QUETZAL using only the QBUFFERs;
* ``qzc``  — QUETZAL + count ALU (QUETZAL+C in Fig. 13).
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Any

from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine
from repro.vector.stats import MachineStats

STYLES = ("base", "vec", "qz", "qzc")


@dataclass
class PairResult:
    """Outcome of simulating one pair on one implementation."""

    cycles: int
    stats: MachineStats
    output: Any

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions


class Implementation(ABC):
    """One (algorithm, style) pair runnable on a simulated machine."""

    #: Algorithm family name ("wfa", "biwfa", "ss", "sw", "nw").
    algorithm: str = ""
    #: One of :data:`STYLES`.
    style: str = "base"

    @property
    def name(self) -> str:
        return f"{self.algorithm}-{self.style}"

    @property
    def requires_quetzal(self) -> bool:
        return self.style in ("qz", "qzc")

    @property
    def requires_count_alu(self) -> bool:
        return self.style == "qzc"

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        """Simulate one pair; returns its timing delta and functional output.

        Implementations override either this method (fully serial) or
        :meth:`run_pair_gen` (fleet-capable); the default of each
        delegates to the other, so overriding one is enough.
        """
        from repro.vector.fleet import drive_serial

        return drive_serial(self.run_pair_gen(machine, pair))

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        """Generator form of :meth:`run_pair` for the fleet executor.

        Yields :class:`~repro.vector.fleet.FleetStep` requests at
        fusable block boundaries and returns the :class:`PairResult`.
        The default never yields: the whole pair runs serially the
        moment the fleet driver first advances the fiber, which is
        always correct — just unbatched.
        """
        if type(self).run_pair is Implementation.run_pair:
            raise NotImplementedError(
                f"{type(self).__name__} must override run_pair or run_pair_gen"
            )
        return self.run_pair(machine, pair)
        yield  # pragma: no cover - marks this as a generator function

    def _wrap(
        self, machine: VectorMachine, before: MachineStats, output: Any
    ) -> PairResult:
        machine.barrier()
        delta = machine.snapshot().delta(before)
        return PairResult(cycles=delta.cycles, stats=delta, output=output)
