"""Common interface for simulated algorithm implementations.

Every implementation style of every algorithm exposes the same surface so
the evaluation runner (:mod:`repro.eval.runner`) can sweep algorithms x
styles x datasets uniformly:

* ``base`` — the compiler-autovectorised baseline the paper normalises to;
* ``vec``  — the hand-written SVE-intrinsics version (VEC in Fig. 13);
* ``qz``   — QUETZAL using only the QBUFFERs;
* ``qzc``  — QUETZAL + count ALU (QUETZAL+C in Fig. 13).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine
from repro.vector.stats import MachineStats

STYLES = ("base", "vec", "qz", "qzc")


@dataclass
class PairResult:
    """Outcome of simulating one pair on one implementation."""

    cycles: int
    stats: MachineStats
    output: Any

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions


class Implementation(ABC):
    """One (algorithm, style) pair runnable on a simulated machine."""

    #: Algorithm family name ("wfa", "biwfa", "ss", "sw", "nw").
    algorithm: str = ""
    #: One of :data:`STYLES`.
    style: str = "base"

    @property
    def name(self) -> str:
        return f"{self.algorithm}-{self.style}"

    @property
    def requires_quetzal(self) -> bool:
        return self.style in ("qz", "qzc")

    @property
    def requires_count_alu(self) -> bool:
        return self.style == "qzc"

    @abstractmethod
    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        """Simulate one pair; returns its timing delta and functional output."""

    def _wrap(
        self, machine: VectorMachine, before: MachineStats, output: Any
    ) -> PairResult:
        machine.barrier()
        delta = machine.snapshot().delta(before)
        return PairResult(cycles=delta.cycles, stats=delta, output=output)
