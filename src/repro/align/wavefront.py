"""Wavefront Alignment (WFA) — the modern O(ns) exact DP (Section II-B).

Implements:

* :func:`wfa_edit_distance` / :func:`wfa_edit_align` — unit-cost WFA with
  full traceback (the Fig. 1b formulation: offsets per diagonal, extended
  along exact-match runs);
* :func:`wfa_affine_score` — gap-affine WFA (M/I/D wavefront components)
  computing the optimal affine cost for a zero-cost match scheme.

Conventions: pattern ``p`` (length m, vertical), text ``t`` (length n,
horizontal); diagonal ``k = h - v``; an offset stores ``h``.  Wavefront
``M[s][k]`` is the furthest offset on diagonal k reachable with score s.
"""

from __future__ import annotations

import numpy as np

from repro.align.types import Alignment, Cigar, Penalties
from repro.errors import AlignmentError

_NEG = -(1 << 40)


def _codes(seq) -> np.ndarray:
    if hasattr(seq, "codes"):
        return np.asarray(seq.codes, dtype=np.int64)
    return np.frombuffer(str(seq).encode("ascii"), dtype=np.uint8).astype(np.int64)


def lcp(p: np.ndarray, t: np.ndarray, v: int, h: int, chunk: int = 128) -> int:
    """Length of the common prefix of ``p[v:]`` and ``t[h:]``."""
    m, n = len(p), len(t)
    if v >= m or h >= n or p[v] != t[h]:
        return 0
    total = 0
    while True:
        size = min(chunk, m - v, n - h)
        if size <= 0:
            return total
        diff = p[v : v + size] != t[h : h + size]
        if diff.any():
            return total + int(np.argmax(diff))
        total += size
        v += size
        h += size
        chunk = min(chunk * 2, 4096)


class EditWavefront:
    """One wave: diagonals ``[lo, hi]`` with furthest offsets."""

    __slots__ = ("lo", "hi", "offsets")

    def __init__(self, lo: int, hi: int, offsets: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi
        self.offsets = offsets

    def get(self, k: int) -> int:
        if self.lo <= k <= self.hi:
            return int(self.offsets[k - self.lo])
        return _NEG

    def set(self, k: int, value: int) -> None:
        self.offsets[k - self.lo] = value


def _extend_wave(wave: EditWavefront, p: np.ndarray, t: np.ndarray) -> None:
    m, n = len(p), len(t)
    for k in range(wave.lo, wave.hi + 1):
        h = wave.get(k)
        if h < 0:
            continue
        v = h - k
        run = lcp(p, t, v, h)
        if run:
            wave.set(k, h + run)


def _next_wave(
    wave: EditWavefront, m: int, n: int
) -> EditWavefront:
    """Edit-distance wavefront recurrence (ins / mismatch / del)."""
    lo = max(wave.lo - 1, -m)
    hi = min(wave.hi + 1, n)
    width = hi - lo + 1
    prev = np.full(width + 2, _NEG, dtype=np.int64)
    # prev[i] holds the previous wave's offset for diagonal lo-1+i.
    for k in range(max(wave.lo, lo - 1), min(wave.hi, hi + 1) + 1):
        prev[k - (lo - 1)] = wave.get(k)
    ins = np.where(prev[:-2] > _NEG, prev[:-2] + 1, _NEG)  # from k-1
    mis = np.where(prev[1:-1] > _NEG, prev[1:-1] + 1, _NEG)  # from k
    dele = prev[2:]  # from k+1, offset unchanged
    new = np.maximum(np.maximum(ins, mis), dele)
    # Validity: offsets must satisfy 0 <= h <= n and 0 <= v = h - k <= m.
    ks = np.arange(lo, hi + 1)
    vs = new - ks
    invalid = (new > n) | (vs > m) | (new < 0)
    new[invalid] = _NEG
    return EditWavefront(lo, hi, new)


def wfa_edit_distance(
    pattern, text, max_score: int | None = None, keep_waves: bool = False
):
    """Edit distance by WFA; optionally returns the wave history.

    Returns ``distance`` or ``(distance, waves)`` with ``keep_waves``.
    ``max_score`` aborts (returns ``None``) past a threshold.
    """
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    k_end = n - m
    wave = EditWavefront(0, 0, np.zeros(1, dtype=np.int64))
    _extend_wave(wave, p, t)
    waves = [wave]
    s = 0
    while wave.get(k_end) < n:
        if max_score is not None and s >= max_score:
            return (None, waves) if keep_waves else None
        wave = _next_wave(wave, m, n)
        _extend_wave(wave, p, t)
        waves.append(wave)
        s += 1
    return (s, waves) if keep_waves else s


def wfa_edit_align(pattern, text) -> Alignment:
    """Edit-distance WFA with full traceback (optimal transcript)."""
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    distance, waves = wfa_edit_distance(pattern, text, keep_waves=True)
    s, k, o = distance, n - m, n
    ops: list[str] = []
    while s > 0:
        prev = waves[s - 1]
        cand_ins = prev.get(k - 1)
        cand_mis = prev.get(k)
        cand_del = prev.get(k + 1)
        best = max(
            cand_ins + 1 if cand_ins > _NEG else _NEG,
            cand_mis + 1 if cand_mis > _NEG else _NEG,
            cand_del if cand_del > _NEG else _NEG,
        )
        if best <= _NEG or best > o:
            raise AlignmentError("WFA traceback lost the optimal path")
        ops.append("M" * (o - best))
        if cand_del > _NEG and cand_del == best:
            ops.append("D")
            k += 1
            o = best
        elif cand_ins > _NEG and cand_ins + 1 == best:
            ops.append("I")
            k -= 1
            o = best - 1
        else:
            ops.append("X")
            o = best - 1
        s -= 1
    if k != 0:
        raise AlignmentError("WFA traceback did not return to the origin")
    ops.append("M" * o)
    cigar = Cigar.from_ops_string("".join(reversed(ops)))
    return Alignment(score=distance, cigar=cigar, algorithm="wfa-edit")


# ----------------------------------------------------------------------
# Gap-affine WFA
# ----------------------------------------------------------------------
class AffineWavefront:
    """M/I/D components of one gap-affine wave."""

    __slots__ = ("lo", "hi", "m", "i", "d")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        width = hi - lo + 1
        self.m = np.full(width, _NEG, dtype=np.int64)
        self.i = np.full(width, _NEG, dtype=np.int64)
        self.d = np.full(width, _NEG, dtype=np.int64)

    def get(self, comp: str, k: int) -> int:
        if self.lo <= k <= self.hi:
            return int(getattr(self, comp)[k - self.lo])
        return _NEG


def wfa_affine_score(
    pattern, text, penalties: Penalties | None = None, max_score: int = 100_000
) -> int:
    """Optimal gap-affine cost via WFA (requires ``penalties.match == 0``)."""
    score, _ = _wfa_affine_waves(pattern, text, penalties, max_score)
    return score


def _wfa_affine_waves(
    pattern, text, penalties: Penalties | None = None, max_score: int = 100_000
) -> tuple[int, "dict[int, AffineWavefront] | None"]:
    """Gap-affine WFA returning (score, wave history) for traceback."""
    pen = penalties or Penalties()
    if pen.match != 0:
        raise AlignmentError("WFA requires a zero match cost")
    x, o, e = pen.mismatch, pen.gap_open, pen.gap_extend
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    if m == 0 and n == 0:
        return 0, None
    if m == 0:
        return o + e * n, None
    if n == 0:
        return o + e * m, None
    k_end = n - m
    waves: dict[int, AffineWavefront] = {}
    w0 = AffineWavefront(0, 0)
    run = lcp(p, t, 0, 0)
    w0.m[0] = run
    waves[0] = w0
    if k_end == 0 and run >= n:
        return 0, waves
    for s in range(1, max_score + 1):
        src_x = waves.get(s - x)
        src_oe = waves.get(s - o - e)
        src_e = waves.get(s - e)
        if src_x is None and src_oe is None and src_e is None:
            continue
        los = [w.lo for w in (src_x, src_oe, src_e) if w is not None]
        his = [w.hi for w in (src_x, src_oe, src_e) if w is not None]
        lo = max(min(los) - 1, -m)
        hi = min(max(his) + 1, n)
        wave = AffineWavefront(lo, hi)
        for k in range(lo, hi + 1):
            ins_src = max(
                src_oe.get("m", k - 1) if src_oe else _NEG,
                src_e.get("i", k - 1) if src_e else _NEG,
            )
            ins = ins_src + 1 if ins_src > _NEG else _NEG
            if ins > n or (ins > _NEG and ins - k > m) or (ins > _NEG and ins - k < 0):
                ins = _NEG
            del_src = max(
                src_oe.get("m", k + 1) if src_oe else _NEG,
                src_e.get("d", k + 1) if src_e else _NEG,
            )
            dele = del_src if del_src > _NEG else _NEG
            if dele > n or (dele > _NEG and dele - k > m) or (dele > _NEG and dele - k < 0):
                dele = _NEG
            mis_src = src_x.get("m", k) if src_x else _NEG
            mis = mis_src + 1 if mis_src > _NEG else _NEG
            if mis > n or (mis > _NEG and mis - k > m):
                mis = _NEG
            best = max(mis, ins, dele)
            wave.i[k - lo] = ins
            wave.d[k - lo] = dele
            if best > _NEG:
                v = best - k
                if 0 <= v <= m and 0 <= best <= n:
                    run = lcp(p, t, v, best)
                    wave.m[k - lo] = best + run
                else:
                    wave.m[k - lo] = _NEG
        waves[s] = wave
        if wave.get("m", k_end) >= n:
            return s, waves
    raise AlignmentError(f"no alignment within max_score={max_score}")


def wfa_affine_align(
    pattern, text, penalties: Penalties | None = None, max_score: int = 100_000
) -> Alignment:
    """Optimal gap-affine alignment with transcript (M/I/D traceback).

    Walks the M/I/D wavefront components backwards: an M value retraces
    its extension run, then whichever of {mismatch from s-x, I, D}
    produced it; I/D values retrace gap-open (from M at s-o-e) or
    gap-extend (from I/D at s-e) steps.
    """
    pen = penalties or Penalties()
    p, t = _codes(pattern), _codes(text)
    m, n = len(p), len(t)
    score, waves = _wfa_affine_waves(pattern, text, pen, max_score)
    if m == 0:
        cigar = Cigar([(n, "I")]) if n else Cigar([])
        return Alignment(score, cigar, algorithm="wfa-affine")
    if n == 0:
        return Alignment(score, Cigar([(m, "D")]), algorithm="wfa-affine")
    x, o, e = pen.mismatch, pen.gap_open, pen.gap_extend

    def get(s: int, comp: str, k: int) -> int:
        wave = waves.get(s)
        return wave.get(comp, k) if wave is not None else _NEG

    ops: list[str] = []
    s, comp, k, off = score, "m", n - m, n
    while True:
        if comp == "m":
            ins = get(s, "i", k)
            dele = get(s, "d", k)
            mis = get(s - x, "m", k)
            pre = max(
                mis + 1 if mis > _NEG else _NEG,
                ins if ins > _NEG else _NEG,
                dele if dele > _NEG else _NEG,
            )
            if s == 0:
                pre = 0
            if pre > off or (pre <= _NEG and s != 0):
                raise AlignmentError("affine WFA traceback lost the path")
            ops.append("M" * (off - pre))
            off = pre
            if s == 0:
                break
            if dele > _NEG and dele == pre:
                comp = "d"
            elif ins > _NEG and ins == pre:
                comp = "i"
            else:
                ops.append("X")
                s -= x
                off -= 1
        elif comp == "i":
            ops.append("I")
            open_src = get(s - o - e, "m", k - 1)
            ext_src = get(s - e, "i", k - 1)
            prev = off - 1
            if ext_src > _NEG and ext_src == prev:
                s, comp = s - e, "i"
            elif open_src > _NEG and open_src == prev:
                s, comp = s - o - e, "m"
            else:  # pragma: no cover - wave invariant
                raise AlignmentError("affine WFA I-traceback lost the path")
            k -= 1
            off = prev
        else:  # comp == "d"
            ops.append("D")
            open_src = get(s - o - e, "m", k + 1)
            ext_src = get(s - e, "d", k + 1)
            if ext_src > _NEG and ext_src == off:
                s, comp = s - e, "d"
            elif open_src > _NEG and open_src == off:
                s, comp = s - o - e, "m"
            else:  # pragma: no cover - wave invariant
                raise AlignmentError("affine WFA D-traceback lost the path")
            k += 1
    if k != 0 or off != 0:
        raise AlignmentError("affine WFA traceback did not reach the origin")
    cigar = Cigar.from_ops_string("".join(reversed(ops)))
    return Alignment(score, cigar, algorithm="wfa-affine")
