"""WFA with QUETZAL acceleration (paper Fig. 6a).

Shares the wavefront recurrence with the VEC implementation; only the
sequence staging (into QBUFFERs, counted per Section V-B) and the extend
inner loop differ:

* :class:`WfaQz` — 2-cycle window ``qzload``s + software counting;
* :class:`WfaQzc` — fused ``qzmhm<qzcount>`` loop (count ALU).
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.quetzal_impl.qz_extend import QzKernel, stage_pair_in_qbuffers
from repro.align.vectorized.wavefront_machine import (
    MachineWavefront,
    account_traceback,
    extend_wave_with_kernel,
    run_wavefront_loop,
)
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.errors import QuetzalError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


class WfaQz(Implementation):
    """Edit-distance WFA on QUETZAL (QBUFFERs only)."""

    algorithm = "wfa"
    style = "qz"

    def __init__(
        self,
        fast: bool | None = None,
        traceback: bool = True,
        max_score: int | None = None,
    ) -> None:
        self.fast = fast
        self.traceback = traceback
        self.max_score = max_score

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        if machine.quetzal is None:
            raise QuetzalError(f"{self.name} requires a QUETZAL-capable machine")
        if self.style == "qzc" and not machine.quetzal.config.count_alu:
            raise QuetzalError(f"{self.name} requires the count ALU")
        before = machine.snapshot()
        m_len, n_len = len(pair.pattern), len(pair.text)
        if m_len == 0 or n_len == 0:
            machine.scalar(4)
            return self._wrap(machine, before, max(m_len, n_len))
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        stage_pair_in_qbuffers(machine, pair.pattern, pair.text)
        kernel = QzKernel(machine, self.style)
        consts = kernel.consts(machine, m_len, n_len)
        cost_model = kernel.cost_model(machine) if fast else None

        def extend(mach: VectorMachine, wave: MachineWavefront) -> None:
            extend_wave_with_kernel(mach, wave, kernel, consts, fast, cost_model)

        distance, waves = run_wavefront_loop(
            machine, m_len, n_len, extend, max_score=self.max_score
        )
        if self.traceback:
            account_traceback(machine, waves, distance)
        return self._wrap(machine, before, distance)


class WfaQzc(WfaQz):
    """Edit-distance WFA on QUETZAL with the count ALU (QUETZAL+C)."""

    style = "qzc"
