"""BiWFA with QUETZAL acceleration.

The forward half uses the same loops as :mod:`.wfa_qz`.  Backward waves
read the *forward-staged* QBUFFERs at mirrored indices — the QZ window
loop shifts-and-counts from the top, and QZ+C uses ``qzmhm<rcount>`` (the
leading-ones mirror of the count ALU; see DESIGN.md).  This avoids
re-staging the sequences on every direction switch.
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.quetzal_impl.qz_extend import QzKernel, stage_pair_in_qbuffers
from repro.align.vectorized.biwfa_vec import account_overlap_scan
from repro.align.vectorized.wavefront_machine import (
    extend_wave_with_kernel,
    init_root_wave,
    next_machine_wave,
)
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.errors import AlignmentError, QuetzalError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


class BiwfaQz(Implementation):
    """Bidirectional WFA on QUETZAL (QBUFFERs only)."""

    algorithm = "biwfa"
    style = "qz"

    def __init__(self, fast: bool | None = None, max_score: int | None = None):
        self.fast = fast
        self.max_score = max_score

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        if machine.quetzal is None:
            raise QuetzalError(f"{self.name} requires a QUETZAL-capable machine")
        if self.style == "qzc" and not machine.quetzal.config.count_alu:
            raise QuetzalError(f"{self.name} requires the count ALU")
        before = machine.snapshot()
        m_len, n_len = len(pair.pattern), len(pair.text)
        if m_len == 0 or n_len == 0:
            machine.scalar(4)
            return self._wrap(machine, before, max(m_len, n_len))
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        stage_pair_in_qbuffers(machine, pair.pattern, pair.text)
        fwd_kernel = QzKernel(machine, self.style, backward=False)
        bwd_kernel = QzKernel(machine, self.style, backward=True)
        consts = fwd_kernel.consts(machine, m_len, n_len)
        fwd_model = fwd_kernel.cost_model(machine) if fast else None
        bwd_model = bwd_kernel.cost_model(machine) if fast else None
        z = n_len - m_len

        def extend(wave, backward: bool) -> None:
            extend_wave_with_kernel(
                machine, wave,
                bwd_kernel if backward else fwd_kernel,
                consts, fast,
                bwd_model if backward else fwd_model,
            )

        fwd = init_root_wave(machine)
        extend(fwd, backward=False)
        bwd = init_root_wave(machine)
        extend(bwd, backward=True)
        s_f = s_b = 0
        while not account_overlap_scan(machine, fwd, bwd, n_len, z):
            if self.max_score is not None and s_f + s_b >= self.max_score:
                raise AlignmentError("BiWFA exceeded max_score")
            if s_f <= s_b:
                fwd = next_machine_wave(machine, fwd, m_len, n_len)
                extend(fwd, backward=False)
                s_f += 1
            else:
                bwd = next_machine_wave(machine, bwd, m_len, n_len)
                extend(bwd, backward=True)
                s_b += 1
        machine.scalar(8)  # breakpoint extraction bookkeeping
        return self._wrap(machine, before, s_f + s_b)


class BiwfaQzc(BiwfaQz):
    """Bidirectional WFA on QUETZAL with the count ALU."""

    style = "qzc"
