"""QUETZAL extend loops (paper Fig. 6) and their fast-path kernels.

Two styles on top of the staged QBUFFERs:

* **QZ** (QBUFFERs only) — reads unaligned 64-bit *windows* with
  ``qzload`` (the Fig. 10 read path: 2 cycles vs >=19 for a gather) and
  counts matching symbols in software (``RBIT`` + ``CLZ`` + shift), so a
  DNA lane advances up to 32 symbols per iteration;
* **QZ+C** (QBUFFERs + count ALU) — ``qzmhm<qzcount>`` fuses the window
  reads and the count into a single instruction, cutting the loop body
  roughly in half (this is why QZ+C pulls ahead most on short reads,
  Section VII-A1).

Backward variants serve BiWFA's reverse wavefronts by mirroring indices
into the forward-staged buffers (and ``qzmhm<rcount>``, the leading-ones
mirror of the count ALU).  All four integrate with the shared chunk
orchestrator (:func:`repro.align.vectorized.extend_loop.extend_chunks`)
via :class:`QzKernel`.
"""

from __future__ import annotations

import numpy as np

from repro.align.vectorized.extend_loop import (
    ChunkState,
    ExtendConsts,
    ExtendKernel,
    LoopCostModel,
    enter_extend,
    window_iterations,
)
from repro.config import QZ_ESIZE_2BIT, QZ_ESIZE_8BIT
from repro.errors import QuetzalError
from repro.genomics.sequence import Sequence
from repro.quetzal.accelerator import QuetzalUnit
from repro.vector.machine import VectorMachine
from repro.vector.program import ReplaySession
from repro.vector.register import Pred, VReg

_COUNT_SHIFT = {2: 1, 8: 3}


# ----------------------------------------------------------------------
# Loop bodies
# ----------------------------------------------------------------------
def qz_window_step(
    machine: VectorMachine, qz: QuetzalUnit, consts: ExtendConsts, st: ChunkState
) -> None:
    """One iteration of the software-count window loop (QZ style)."""
    m = machine
    qz = m.quetzal  # the recorder's proxy during capture; same unit otherwise
    inb = st.inb
    shift = _COUNT_SHIFT[qz.element_bits]
    a = qz.qzload(st.v, 0, pred=inb, window=True)
    b = qz.qzload(st.h, 1, pred=inb, window=True)
    x = m.xor(a, b, pred=inb)
    tz = m.clz(m.rbit(x, pred=inb), pred=inb)
    cnt = m.shr(tz, shift, pred=inb)
    c = m.min(cnt, m.sub(consts.mvec, st.v, pred=inb), pred=inb)
    c = m.min(c, m.sub(consts.nvec, st.h, pred=inb), pred=inb)
    st.v = m.add(st.v, c, pred=inb)
    st.h = m.add(st.h, c, pred=inb)
    full = m.cmp("eq", c, consts.window, pred=inb)
    pv = m.cmp("lt", st.v, consts.m_len, pred=full)
    st.inb = m.cmp("lt", st.h, consts.n_len, pred=pv)


def qz_count_step(
    machine: VectorMachine, qz: QuetzalUnit, consts: ExtendConsts, st: ChunkState
) -> None:
    """One iteration of the count-ALU loop (QZ+C style)."""
    m = machine
    qz = m.quetzal  # the recorder's proxy during capture; same unit otherwise
    inb = st.inb
    counts = qz.qzmhm("count", st.v, st.h, pred=inb)
    c = m.min(counts, m.sub(consts.mvec, st.v, pred=inb), pred=inb)
    c = m.min(c, m.sub(consts.nvec, st.h, pred=inb), pred=inb)
    st.v = m.add(st.v, c, pred=inb)
    st.h = m.add(st.h, c, pred=inb)
    full = m.cmp("eq", c, consts.window, pred=inb)
    pv = m.cmp("lt", st.v, consts.m_len, pred=full)
    st.inb = m.cmp("lt", st.h, consts.n_len, pred=pv)


def qz_window_rev_step(
    machine: VectorMachine, qz: QuetzalUnit, consts: ExtendConsts, st: ChunkState
) -> None:
    """One iteration of the backward software-count loop (BiWFA, QZ)."""
    m = machine
    qz = m.quetzal  # the recorder's proxy during capture; same unit otherwise
    inb = st.inb
    bits = qz.element_bits
    shift = _COUNT_SHIFT[bits]
    vi = m.sub(consts.mtop, st.v, pred=inb)
    hi = m.sub(consts.ntop, st.h, pred=inb)
    rel = m.min(m.min(vi, hi, pred=inb), consts.wtop, pred=inb)
    a = qz.qzload(m.sub(vi, rel, pred=inb), 0, pred=inb, window=True)
    b = qz.qzload(m.sub(hi, rel, pred=inb), 1, pred=inb, window=True)
    x = m.xor(a, b, pred=inb)
    amt = m.mul(m.sub(consts.wtop, rel, pred=inb), bits, pred=inb)
    lead = m.clz(m.shl(x, amt, pred=inb), pred=inb)
    cnt = m.shr(lead, shift, pred=inb)
    c = m.min(cnt, m.sub(consts.mvec, st.v, pred=inb), pred=inb)
    c = m.min(c, m.sub(consts.nvec, st.h, pred=inb), pred=inb)
    st.v = m.add(st.v, c, pred=inb)
    st.h = m.add(st.h, c, pred=inb)
    full = m.cmp("eq", c, consts.window, pred=inb)
    pv = m.cmp("lt", st.v, consts.m_len, pred=full)
    st.inb = m.cmp("lt", st.h, consts.n_len, pred=pv)


def qz_rcount_step(
    machine: VectorMachine, qz: QuetzalUnit, consts: ExtendConsts, st: ChunkState
) -> None:
    """One iteration of the backward count-ALU loop (BiWFA, QZ+C)."""
    m = machine
    qz = m.quetzal  # the recorder's proxy during capture; same unit otherwise
    inb = st.inb
    vi = m.sub(consts.mtop, st.v, pred=inb)
    hi = m.sub(consts.ntop, st.h, pred=inb)
    counts = qz.qzmhm("rcount", vi, hi, pred=inb)
    c = m.min(counts, m.sub(consts.mvec, st.v, pred=inb), pred=inb)
    c = m.min(c, m.sub(consts.nvec, st.h, pred=inb), pred=inb)
    st.v = m.add(st.v, c, pred=inb)
    st.h = m.add(st.h, c, pred=inb)
    full = m.cmp("eq", c, consts.window, pred=inb)
    pv = m.cmp("lt", st.v, consts.m_len, pred=full)
    st.inb = m.cmp("lt", st.h, consts.n_len, pred=pv)


_STEPS = {
    ("qz", False): qz_window_step,
    ("qzc", False): qz_count_step,
    ("qz", True): qz_window_rev_step,
    ("qzc", True): qz_rcount_step,
}


def _standalone(step):
    def loop(
        machine: VectorMachine,
        qz: QuetzalUnit,
        v: VReg,
        h: VReg,
        active: Pred,
        m_len: int,
        n_len: int,
        consts: ExtendConsts | None = None,
        iter_hook=None,
    ):
        if consts is None:
            consts = ExtendConsts(machine, m_len, n_len, 64 // qz.element_bits)
        st = enter_extend(machine, consts, v, h, active)
        if iter_hook is None and ReplaySession.enabled(machine):
            key = (id(machine), step)
            session = consts.replay.get(key)
            if session is None:
                session = consts.replay[key] = ReplaySession(
                    machine,
                    lambda mm, ss: step(mm, qz, consts, ss),
                    name=step.__name__,
                )
            session.run_loop(st)
            return st.v, st.h
        while machine.ptest_spec(st.inb):
            step(machine, qz, consts, st)
            if iter_hook is not None:
                iter_hook(machine)
        return st.v, st.h

    return loop


#: Standalone serial loops (cost-model measurement and unit tests).
qz_window_extend = _standalone(qz_window_step)
qz_window_extend.__name__ = "qz_window_extend"
qz_count_extend = _standalone(qz_count_step)
qz_count_extend.__name__ = "qz_count_extend"
qz_window_extend_rev = _standalone(qz_window_rev_step)
qz_window_extend_rev.__name__ = "qz_window_extend_rev"
qz_rcount_extend = _standalone(qz_rcount_step)
qz_rcount_extend.__name__ = "qz_rcount_extend"


def qz_count_iterations(
    runs: np.ndarray, bounds: np.ndarray, entered: np.ndarray, window: int
) -> np.ndarray:
    """Iterations of any QUETZAL window loop (alias of the shared formula)."""
    return window_iterations(runs, bounds, entered, window)


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------
class _QzLoopCostModel(LoopCostModel):
    """Measurement base for loops needing a staged QUETZAL unit."""

    lanes_ebits = 64
    _loop = None

    def __init__(self, machine: VectorMachine) -> None:
        if machine.quetzal is None:
            raise QuetzalError("cost model needs a machine with a QUETZAL unit")
        self.config = machine.quetzal.config
        super().__init__(machine.system)

    def _key_extra(self) -> tuple:
        return (self.config.name, self.config.read_ports, self.config.qbuffer_kb)

    def _setup(self):
        machine = VectorMachine(self.system)
        qz = QuetzalUnit(machine, self.config)
        seq = Sequence("A" * 4096)
        qz.load_sequence(0, seq)
        qz.load_sequence(1, seq)
        qz.qzconf(4096, 4096, QZ_ESIZE_2BIT)
        consts = ExtendConsts(machine, 4096, 4096, 64 // qz.element_bits)
        return machine, (qz, consts)

    def _run(self, machine, ctx, v, h, act, length, hook):
        qz, consts = ctx
        loop = type(self)._loop
        loop(machine, qz, v, h, act, length, length, consts=consts, iter_hook=hook)

    @property
    def stall_category(self) -> str:
        return "qbuffer"


class QzWindowCostModel(_QzLoopCostModel):
    kind = "qz-window"
    _loop = staticmethod(qz_window_extend)


class QzCountCostModel(_QzLoopCostModel):
    kind = "qz-count"
    _loop = staticmethod(qz_count_extend)


class QzWindowRevCostModel(_QzLoopCostModel):
    kind = "qz-window-rev"
    _loop = staticmethod(qz_window_extend_rev)


class QzRcountCostModel(_QzLoopCostModel):
    kind = "qz-rcount"
    _loop = staticmethod(qz_rcount_extend)


_COST_MODELS = {
    ("qz", False): QzWindowCostModel,
    ("qzc", False): QzCountCostModel,
    ("qz", True): QzWindowRevCostModel,
    ("qzc", True): QzRcountCostModel,
}


# ----------------------------------------------------------------------
# Kernel + staging
# ----------------------------------------------------------------------
class QzKernel(ExtendKernel):
    """QUETZAL extend kernel for the shared chunk orchestrator."""

    def __init__(
        self,
        machine: VectorMachine,
        style: str,
        backward: bool = False,
    ) -> None:
        if machine.quetzal is None:
            raise QuetzalError("machine has no QUETZAL unit attached")
        if style not in ("qz", "qzc"):
            raise QuetzalError(f"unknown QUETZAL style: {style!r}")
        self.qz = machine.quetzal
        self.style = style
        self.backward = backward
        self.window = 64 // self.qz.element_bits
        self._step = _STEPS[(style, backward)]
        self._m_len = self.qz.ctrl.eb[0]
        self._n_len = self.qz.ctrl.eb[1]

    def step(self, machine, consts, st):
        self._step(machine, self.qz, consts, st)

    def codes(self):
        p = _staged_codes(self.qz, 0, self._m_len)
        t = _staged_codes(self.qz, 1, self._n_len)
        if self.backward:
            return p[::-1], t[::-1]
        return p, t

    def cost_model(self, machine):
        return _COST_MODELS[(self.style, self.backward)](machine)

    def account_memory(self, machine, chunk_mem, total_iters):
        # Sequence traffic stays inside the QBUFFERs: two reads/iteration.
        self.qz.qbuf[0].reads += total_iters
        self.qz.qbuf[1].reads += total_iters


def stage_pair_in_qbuffers(
    machine: VectorMachine, pattern: Sequence, text: Sequence
) -> None:
    """Stage (pattern, text) and configure element counts (Fig. 6 lines 3-4)."""
    qz = machine.quetzal
    if qz is None:
        raise QuetzalError("machine has no QUETZAL unit attached")
    qz.clear()
    qz.load_sequence(0, pattern)
    qz.load_sequence(1, text)
    esize = QZ_ESIZE_2BIT if pattern.alphabet.encoded_bits == 2 else QZ_ESIZE_8BIT
    qz.qzconf(len(pattern), len(text), esize)


def _staged_codes(qz: QuetzalUnit, sel: int, count: int) -> np.ndarray:
    """Functional view of a staged sequence (cached on the unit)."""
    cache = getattr(qz, "_staged_cache", None)
    if cache is None:
        cache = {}
        qz._staged_cache = cache
    key = (sel, count, qz.qbuf[sel].writes)
    hit = cache.get(sel)
    if hit is not None and hit[0] == key:
        return hit[1]
    from repro.genomics.encoding import unpack_words

    codes = unpack_words(qz.qbuf[sel].words, qz.element_bits, count)
    arr = codes.astype(np.int64)
    cache[sel] = (key, arr)
    return arr
