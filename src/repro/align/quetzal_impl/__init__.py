"""QUETZAL-accelerated implementations (QZ / QZ+C in Fig. 13)."""

from repro.align.quetzal_impl.qz_extend import (
    qz_window_extend,
    qz_count_extend,
    qz_count_iterations,
    QzWindowCostModel,
    QzCountCostModel,
)
from repro.align.quetzal_impl.wfa_qz import WfaQz, WfaQzc
from repro.align.quetzal_impl.biwfa_qz import BiwfaQz, BiwfaQzc
from repro.align.quetzal_impl.ss_qz import SsQz, SsQzc
from repro.align.quetzal_impl.dp_qz import KswQz, ParasailNwQz
from repro.align.quetzal_impl.pipeline import SsWfaPipelineVec, SsWfaPipelineQzc

__all__ = [
    "qz_window_extend",
    "qz_count_extend",
    "qz_count_iterations",
    "QzWindowCostModel",
    "QzCountCostModel",
    "WfaQz",
    "WfaQzc",
    "BiwfaQz",
    "BiwfaQzc",
    "SsQz",
    "SsQzc",
    "KswQz",
    "ParasailNwQz",
    "SsWfaPipelineVec",
    "SsWfaPipelineQzc",
]
