"""SneakySnake with QUETZAL acceleration (paper Fig. 6b)."""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.quetzal_impl.qz_extend import QzKernel, stage_pair_in_qbuffers
from repro.align.sneakysnake import SneakySnakeResult
from repro.align.vectorized.ss_vec import run_snake
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.errors import AlignmentError, QuetzalError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


class SsQz(Implementation):
    """SneakySnake filter on QUETZAL (QBUFFERs only)."""

    algorithm = "ss"
    style = "qz"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        fast: bool | None = None,
    ) -> None:
        if threshold is not None and threshold < 0:
            raise AlignmentError("threshold must be non-negative")
        self.threshold = threshold
        self.threshold_frac = threshold_frac
        self.fast = fast

    def threshold_for(self, pair: SequencePair) -> int:
        if self.threshold is not None:
            return self.threshold
        return max(1, int(len(pair.pattern) * self.threshold_frac))

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        if machine.quetzal is None:
            raise QuetzalError(f"{self.name} requires a QUETZAL-capable machine")
        if self.style == "qzc" and not machine.quetzal.config.count_alu:
            raise QuetzalError(f"{self.name} requires the count ALU")
        before = machine.snapshot()
        m = machine
        n = len(pair.pattern)
        threshold = self.threshold_for(pair)
        if n == 0:
            m.scalar(2)
            result = SneakySnakeResult(accepted=True, edits=0, threshold=threshold)
            return self._wrap(m, before, result)
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        stage_pair_in_qbuffers(m, pair.pattern, pair.text)
        kernel = QzKernel(m, self.style)
        result = run_snake(m, kernel, n, len(pair.text), threshold, fast)
        return self._wrap(m, before, result)


class SsQzc(SsQz):
    """SneakySnake filter on QUETZAL with the count ALU."""

    style = "qzc"
