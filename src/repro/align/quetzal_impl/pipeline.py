"""Use case 5: SneakySnake filter + WFA alignment in one pipeline (Fig. 14b).

SS screens each pair against the edit threshold; pairs it accepts go on
to WFA alignment.  The paper demonstrates QUETZAL switching between both
algorithms at run time with a single staging of the sequences — here the
QZ+C pipeline stages the pair once and both stages read the QBUFFERs.
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.quetzal_impl.ss_qz import SsQzc
from repro.align.quetzal_impl.wfa_qz import WfaQzc
from repro.align.vectorized.ss_vec import SsVec
from repro.align.vectorized.wfa_vec import WfaVec
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


class _PipelineBase(Implementation):
    """Shared SS -> WFA control flow."""

    algorithm = "ss+wfa"

    def __init__(self, filter_impl, align_impl) -> None:
        self._filter = filter_impl
        self._align = align_impl

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        verdict = self._filter.run_pair(machine, pair).output
        machine.scalar(3)  # accept/reject branch
        distance = None
        if verdict.accepted:
            distance = self._align.run_pair(machine, pair).output
        return self._wrap(machine, before, (verdict, distance))


class SsWfaPipelineVec(_PipelineBase):
    """VEC filter + VEC aligner."""

    style = "vec"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        fast: bool | None = None,
    ) -> None:
        super().__init__(
            SsVec(threshold=threshold, threshold_frac=threshold_frac, fast=fast),
            WfaVec(fast=fast),
        )


class SsWfaPipelineQzc(_PipelineBase):
    """QUETZAL+C filter + QUETZAL+C aligner (single staging per pair)."""

    style = "qzc"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        fast: bool | None = None,
    ) -> None:
        super().__init__(
            SsQzc(threshold=threshold, threshold_frac=threshold_frac, fast=fast),
            WfaQzc(fast=fast),
        )
