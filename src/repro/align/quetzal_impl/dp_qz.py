"""Classic DP with QUETZAL (Fig. 7 steps 3-4): QBUFFER-resident operands."""

from __future__ import annotations

from repro.align.dp_machine import KswVec, ParasailNwVec


class KswQz(KswVec):
    """Banded global affine alignment with QBUFFER-resident operands."""

    style = "qz"


class ParasailNwQz(ParasailNwVec):
    """Full-table NW with QBUFFER-resident operands."""

    style = "qz"
