"""Alignment result types: CIGAR strings, penalties, validation.

CIGAR conventions (pattern -> text):

* ``M`` both characters equal (consume one of each);
* ``X`` substitution (consume one of each);
* ``I`` insertion — a text character absent from the pattern (consume text);
* ``D`` deletion — a pattern character absent from the text (consume pattern).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from repro.errors import AlignmentError

_CIGAR_RE = re.compile(r"(\d+)([MXID])")
_VALID_OPS = set("MXID")


class Cigar:
    """A run-length encoded edit transcript."""

    __slots__ = ("_ops",)

    def __init__(self, ops: "str | list[tuple[int, str]]") -> None:
        if isinstance(ops, str):
            parsed = _CIGAR_RE.findall(ops)
            if "".join(f"{n}{o}" for n, o in parsed) != ops:
                raise AlignmentError(f"malformed CIGAR string: {ops!r}")
            self._ops = [(int(n), o) for n, o in parsed]
        else:
            self._ops = []
            for n, o in ops:
                if o not in _VALID_OPS:
                    raise AlignmentError(f"invalid CIGAR op: {o!r}")
                if n < 0:
                    raise AlignmentError(f"negative CIGAR run: {n}")
                if n:
                    self._ops.append((n, o))
        self._ops = self._coalesce(self._ops)

    @staticmethod
    def _coalesce(ops: list[tuple[int, str]]) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        for n, o in ops:
            if out and out[-1][1] == o:
                out[-1] = (out[-1][0] + n, o)
            else:
                out.append((n, o))
        return out

    @classmethod
    def from_ops_string(cls, expanded: str) -> "Cigar":
        """Build from a per-character op string like ``"MMXMID"``."""
        ops = [(len(list(g)), o) for o, g in itertools.groupby(expanded)]
        return cls(ops)

    def __str__(self) -> str:
        return "".join(f"{n}{o}" for n, o in self._ops)

    def __repr__(self) -> str:
        return f"Cigar({str(self)!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, Cigar):
            return self._ops == other._ops
        if isinstance(other, str):
            return str(self) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(str(self))

    def __iter__(self):
        return iter(self._ops)

    @property
    def ops(self) -> list[tuple[int, str]]:
        return list(self._ops)

    def expanded(self) -> str:
        return "".join(o * n for n, o in self._ops)

    def count(self, op: str) -> int:
        return sum(n for n, o in self._ops if o == op)

    @property
    def edits(self) -> int:
        """Levenshtein cost of this transcript (X + I + D)."""
        return self.count("X") + self.count("I") + self.count("D")

    @property
    def pattern_length(self) -> int:
        return self.count("M") + self.count("X") + self.count("D")

    @property
    def text_length(self) -> int:
        return self.count("M") + self.count("X") + self.count("I")

    def validate(self, pattern: str, text: str) -> None:
        """Check the transcript really transforms ``pattern`` into ``text``."""
        pattern, text = str(pattern), str(text)
        if self.pattern_length != len(pattern) or self.text_length != len(text):
            raise AlignmentError(
                f"CIGAR lengths ({self.pattern_length}, {self.text_length}) "
                f"do not cover inputs ({len(pattern)}, {len(text)})"
            )
        i = j = 0
        for n, o in self._ops:
            if o == "M":
                if pattern[i : i + n] != text[j : j + n]:
                    raise AlignmentError(f"M run at ({i},{j}) is not a match")
                i += n
                j += n
            elif o == "X":
                for d in range(n):
                    if pattern[i + d] == text[j + d]:
                        raise AlignmentError(f"X at ({i + d},{j + d}) is a match")
                i += n
                j += n
            elif o == "D":
                i += n
            else:  # I
                j += n

    def score(self, penalties: "Penalties") -> int:
        """Gap-affine score of this transcript under ``penalties``."""
        total = 0
        for n, o in self._ops:
            if o == "M":
                total += n * penalties.match
            elif o == "X":
                total += n * penalties.mismatch
            else:
                total += penalties.gap_open + n * penalties.gap_extend
        return total


@dataclass(frozen=True)
class Penalties:
    """Gap-affine penalties (costs are positive, match usually 0).

    Defaults are the WFA paper's canonical ``(0, 4, 6, 2)`` scheme.
    """

    match: int = 0
    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 2

    def __post_init__(self) -> None:
        if self.mismatch <= self.match:
            raise AlignmentError("mismatch penalty must exceed match")
        if self.gap_extend <= 0:
            raise AlignmentError("gap_extend must be positive")
        if self.gap_open < 0:
            raise AlignmentError("gap_open must be non-negative")


#: Unit-cost (Levenshtein) penalties, for edit-distance modes.
EDIT_PENALTIES = Penalties(match=0, mismatch=1, gap_open=0, gap_extend=1)


@dataclass(frozen=True)
class Alignment:
    """A scored alignment with an optional transcript."""

    score: int
    cigar: Cigar | None = None
    algorithm: str = ""

    def validate(self, pattern: str, text: str) -> None:
        if self.cigar is not None:
            self.cigar.validate(pattern, text)

    @property
    def edits(self) -> int:
        if self.cigar is None:
            raise AlignmentError("alignment carries no transcript")
        return self.cigar.edits
