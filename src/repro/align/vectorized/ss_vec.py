"""SneakySnake on the simulated vector CPU (VEC style, paper Fig. 2b).

Each greedy step evaluates the exact-match run of all ``2E+1`` diagonals
from the current column; lanes are diagonals, runs are computed with the
same word-window extend chunks as WFA (interleaved across the step), and
a serialising horizontal-max picks the snake's next segment.
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.sneakysnake import SneakySnakeResult
from repro.align.vectorized.extend_loop import (
    ExtendKernel,
    VecExtendKernel,
    extend_chunks_gen,
)
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.fleet import drive_serial, program_step
from repro.vector.machine import VectorMachine
from repro.vector.program import REPLAY_METER, ReplaySession, capture


def run_snake(
    machine: VectorMachine,
    kernel: ExtendKernel,
    n: int,
    n_text: int,
    threshold: int,
    fast: bool,
) -> SneakySnakeResult:
    """The greedy snake loop over diagonal chunks (shared by all styles)."""
    return drive_serial(
        run_snake_gen(machine, kernel, n, n_text, threshold, fast)
    )


def run_snake_gen(
    machine: VectorMachine,
    kernel: ExtendKernel,
    n: int,
    n_text: int,
    threshold: int,
    fast: bool,
):
    """Generator form of :func:`run_snake` yielding fleet step requests."""
    m = machine
    consts = kernel.consts(m, n, n_text)
    cost_model = kernel.cost_model(m) if fast else None
    lanes = m.lanes(64)
    k0s = list(range(-threshold, threshold + 1, lanes))

    def column_setup(mm, col):
        """Per-column chunk construction; ``col`` may be symbolic."""
        vcol = mm.dup(col, ebits=64)
        outs = [vcol]
        for k0 in k0s:
            count = min(lanes, threshold - k0 + 1)
            act = mm.whilelt(0, count, ebits=64)
            kvec = mm.iota(64, start=k0)
            h = mm.add(kvec, col, pred=act)
            valid = mm.cmp("ge", h, 0, pred=act)
            outs += [h, valid]
        return tuple(outs)

    # The setup block is a straight-line function of the scalar ``col``,
    # so it captures once per pair and replays for every later column
    # (the data-dependent ``col += best`` advance stays interpreted).
    setup_prog = None
    col = 0
    edits = 0
    rejected = False
    while col < n:
        if ReplaySession.enabled(m):
            if setup_prog is None:
                REPLAY_METER.total_blocks += 1
                outs, setup_prog = capture(m, column_setup, (), (col,))
                if setup_prog is None:
                    setup_prog = False  # unrecordable: interpret from now on
            elif setup_prog is False:
                REPLAY_METER.total_blocks += 1
                outs = column_setup(m, col)
                REPLAY_METER.interpreted_blocks += 1
            else:
                # Fleet-fusable: the captured column-setup program runs
                # across pairs in one batch when fibers line up.
                holder = {}

                def run_setup(col=col, holder=holder):
                    REPLAY_METER.total_blocks += 1
                    outs = setup_prog.replay(m, (), (col,))
                    if outs is None:
                        outs = column_setup(m, col)
                        REPLAY_METER.interpreted_blocks += 1
                        REPLAY_METER.interpreted_instructions += setup_prog.n_ops
                    holder["outs"] = outs

                yield program_step(
                    m,
                    setup_prog,
                    (col,),
                    run=run_setup,
                    accept=lambda o, holder=holder: holder.__setitem__("outs", o),
                )
                outs = holder["outs"]
        else:
            outs = column_setup(m, col)
        vcol = outs[0]
        chunks = []
        metas = []
        for i in range(len(k0s)):
            h, valid = outs[1 + 2 * i], outs[2 + 2 * i]
            chunks.append((vcol, h, valid))
            metas.append((h, valid))
        results = yield from extend_chunks_gen(
            m, kernel, consts, chunks, fast, cost_model
        )
        best = 0
        for (h, valid), (h2, _runs) in zip(metas, results):
            cnt = m.sub(h2, h)
            chunk_best = m.reduce_max(cnt, pred=valid)
            if chunk_best > best:
                best = chunk_best
            m.scalar(2)
        col += best
        m.scalar(3)
        if col >= n:
            break
        edits += 1
        col += 1
        if edits > threshold:
            rejected = True
            break
    return SneakySnakeResult(
        accepted=not rejected and edits <= threshold,
        edits=edits,
        threshold=threshold,
    )


class SsVec(Implementation):
    """SneakySnake filter, hand-vectorised (VEC)."""

    algorithm = "ss"
    style = "vec"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        fast: bool | None = None,
    ) -> None:
        if threshold is not None and threshold < 0:
            raise AlignmentError("threshold must be non-negative")
        self.threshold = threshold
        self.threshold_frac = threshold_frac
        self.fast = fast

    def threshold_for(self, pair: SequencePair) -> int:
        if self.threshold is not None:
            return self.threshold
        return max(1, int(len(pair.pattern) * self.threshold_frac))

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        before = machine.snapshot()
        m = machine
        n = len(pair.pattern)
        threshold = self.threshold_for(pair)
        if n == 0:
            m.scalar(2)
            result = SneakySnakeResult(accepted=True, edits=0, threshold=threshold)
            return self._wrap(m, before, result)
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        uid = m.name_uid("ss")
        pbuf = m.new_buffer(f"ss_p{uid}", pair.pattern.codes, elem_bytes=1)
        tbuf = m.new_buffer(f"ss_t{uid}", pair.text.codes, elem_bytes=1)
        kernel = VecExtendKernel(pbuf, tbuf)
        result = yield from run_snake_gen(
            m, kernel, n, len(pair.text), threshold, fast
        )
        return self._wrap(m, before, result)
