"""SneakySnake on the simulated vector CPU (VEC style, paper Fig. 2b).

Each greedy step evaluates the exact-match run of all ``2E+1`` diagonals
from the current column; lanes are diagonals, runs are computed with the
same word-window extend chunks as WFA (interleaved across the step), and
a serialising horizontal-max picks the snake's next segment.
"""

from __future__ import annotations

import itertools

from repro.align.interface import Implementation, PairResult
from repro.align.sneakysnake import SneakySnakeResult
from repro.align.vectorized.extend_loop import (
    ExtendKernel,
    VecExtendKernel,
    extend_chunks,
)
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine

_uid = itertools.count()


def run_snake(
    machine: VectorMachine,
    kernel: ExtendKernel,
    n: int,
    n_text: int,
    threshold: int,
    fast: bool,
) -> SneakySnakeResult:
    """The greedy snake loop over diagonal chunks (shared by all styles)."""
    m = machine
    consts = kernel.consts(m, n, n_text)
    cost_model = kernel.cost_model(m) if fast else None
    lanes = m.lanes(64)
    col = 0
    edits = 0
    rejected = False
    while col < n:
        vcol = m.dup(col, ebits=64)
        chunks = []
        metas = []
        for k0 in range(-threshold, threshold + 1, lanes):
            count = min(lanes, threshold - k0 + 1)
            act = m.whilelt(0, count, ebits=64)
            kvec = m.iota(64, start=k0)
            h = m.add(kvec, col, pred=act)
            valid = m.cmp("ge", h, 0, pred=act)
            chunks.append((vcol, h, valid))
            metas.append((h, valid))
        results = extend_chunks(m, kernel, consts, chunks, fast, cost_model)
        best = 0
        for (h, valid), (h2, _runs) in zip(metas, results):
            cnt = m.sub(h2, h)
            chunk_best = m.reduce_max(cnt, pred=valid)
            if chunk_best > best:
                best = chunk_best
            m.scalar(2)
        col += best
        m.scalar(3)
        if col >= n:
            break
        edits += 1
        col += 1
        if edits > threshold:
            rejected = True
            break
    return SneakySnakeResult(
        accepted=not rejected and edits <= threshold,
        edits=edits,
        threshold=threshold,
    )


class SsVec(Implementation):
    """SneakySnake filter, hand-vectorised (VEC)."""

    algorithm = "ss"
    style = "vec"

    def __init__(
        self,
        threshold: int | None = None,
        threshold_frac: float = 0.05,
        fast: bool | None = None,
    ) -> None:
        if threshold is not None and threshold < 0:
            raise AlignmentError("threshold must be non-negative")
        self.threshold = threshold
        self.threshold_frac = threshold_frac
        self.fast = fast

    def threshold_for(self, pair: SequencePair) -> int:
        if self.threshold is not None:
            return self.threshold
        return max(1, int(len(pair.pattern) * self.threshold_frac))

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        m = machine
        n = len(pair.pattern)
        threshold = self.threshold_for(pair)
        if n == 0:
            m.scalar(2)
            result = SneakySnakeResult(accepted=True, edits=0, threshold=threshold)
            return self._wrap(m, before, result)
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        uid = next(_uid)
        pbuf = m.new_buffer(f"ss_p{uid}", pair.pattern.codes, elem_bytes=1)
        tbuf = m.new_buffer(f"ss_t{uid}", pair.text.codes, elem_bytes=1)
        kernel = VecExtendKernel(pbuf, tbuf)
        result = run_snake(m, kernel, n, len(pair.text), threshold, fast)
        return self._wrap(m, before, result)
