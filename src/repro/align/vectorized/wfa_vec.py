"""WFA on the simulated vector CPU (the paper's VEC baseline, Fig. 2a).

The wavefront recurrence runs with unit-stride vector loads (shared with
the QUETZAL styles, :mod:`.wavefront_machine`); the extend step runs the
gather-based word-window loop of :mod:`.extend_loop` — instruction-level
(interleaved chunks) for short reads, measured-cost fast path for long
ones.
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.vectorized.extend_loop import VecExtendKernel
from repro.align.vectorized.wavefront_machine import (
    MachineWavefront,
    account_traceback,
    extend_wave_with_kernel_gen,
    run_wavefront_loop_gen,
)
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine
from repro.vector.register import SimBuffer

#: Above this read length the fast timing path replaces per-window loops.
FAST_LENGTH_THRESHOLD = 1200


def make_sequence_buffers(
    machine: VectorMachine, pair: SequencePair
) -> tuple[SimBuffer, SimBuffer]:
    """Stage the pair's alphabet codes as byte buffers in simulated memory."""
    uid = machine.name_uid("seq")
    pbuf = machine.new_buffer(f"pat{uid}", pair.pattern.codes, elem_bytes=1)
    tbuf = machine.new_buffer(f"txt{uid}", pair.text.codes, elem_bytes=1)
    return pbuf, tbuf


class WfaVec(Implementation):
    """Edit-distance WFA, hand-vectorised (VEC)."""

    algorithm = "wfa"
    style = "vec"

    def __init__(
        self,
        fast: bool | None = None,
        traceback: bool = True,
        max_score: int | None = None,
    ) -> None:
        self.fast = fast
        self.traceback = traceback
        self.max_score = max_score

    def _use_fast(self, pair: SequencePair) -> bool:
        if self.fast is not None:
            return self.fast
        return pair.max_length > FAST_LENGTH_THRESHOLD

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        before = machine.snapshot()
        m_len, n_len = len(pair.pattern), len(pair.text)
        if m_len == 0 or n_len == 0:
            machine.scalar(4)
            return self._wrap(machine, before, max(m_len, n_len))
        fast = self._use_fast(pair)
        pbuf, tbuf = make_sequence_buffers(machine, pair)
        kernel = VecExtendKernel(pbuf, tbuf)
        consts = kernel.consts(machine, m_len, n_len)
        cost_model = kernel.cost_model(machine) if fast else None

        def extend_gen(mach: VectorMachine, wave: MachineWavefront):
            return extend_wave_with_kernel_gen(
                mach, wave, kernel, consts, fast, cost_model
            )

        distance, waves = yield from run_wavefront_loop_gen(
            machine, m_len, n_len, extend_gen, max_score=self.max_score
        )
        if self.traceback:
            account_traceback(machine, waves, distance)
        return self._wrap(machine, before, distance)
