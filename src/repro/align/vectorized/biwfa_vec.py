"""BiWFA on the simulated vector CPU (VEC style).

Forward wavefronts run over (pattern, text); backward wavefronts are
forward wavefronts over the reversed sequences; the sides alternate (the
lower-score side advances) until overlap, as in :mod:`repro.align.biwfa`.

The simulated timing covers the bidirectional distance search, the
overlap scans, and the breakpoint bookkeeping.  The recursive half
re-alignments of full-transcript BiWFA are strictly smaller instances of
the same kernels, so relative style-vs-style speedups (what Fig. 13
reports) are unaffected by stopping at the breakpoint; DESIGN.md records
this simplification.
"""

from __future__ import annotations

from repro.align.interface import Implementation, PairResult
from repro.align.vectorized.extend_loop import VecExtendKernel
from repro.align.vectorized.wfa_vec import FAST_LENGTH_THRESHOLD
from repro.align.vectorized.wavefront_machine import (
    INV_THRESH,
    MachineWavefront,
    extend_wave_with_kernel_gen,
    init_root_wave,
    next_machine_wave,
)
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


def account_overlap_scan(
    machine: VectorMachine,
    fwd: MachineWavefront,
    bwd: MachineWavefront,
    n_len: int,
    z: int,
) -> bool:
    """Check wave overlap; charge the vectorised scan's cost.

    Functionally: overlap on diagonal k iff ``fwd[k] + bwd[z-k] >= n``.
    Timing: one pass over the forward wave in 16-lane chunks, loading both
    wavefronts and comparing.
    """
    m = machine
    lanes = m.lanes(32)
    chunks = -(-fwd.width // lanes)
    for i in range(chunks):
        width = min(lanes, fwd.width - i * lanes)
        m.mem.access(fwd.buf.addr_of(fwd.pos(fwd.lo) + i * lanes), width * 4)
        m.mem.access(bwd.buf.addr_of(bwd.pos(bwd.lo)), width * 4)
    m.account_block("memory", instructions=2 * chunks, busy=2 * chunks)
    m.account_block("vector", instructions=3 * chunks, busy=3 * chunks)
    m.scalar(2)
    f_off = fwd.host_offsets()
    for idx, k in enumerate(range(fwd.lo, fwd.hi + 1)):
        fo = int(f_off[idx])
        if fo <= INV_THRESH:
            continue
        bo = bwd.host_get(z - k)
        if bo > INV_THRESH and fo + bo >= n_len:
            return True
    return False


class BiwfaVec(Implementation):
    """Bidirectional edit-distance WFA, hand-vectorised (VEC)."""

    algorithm = "biwfa"
    style = "vec"

    def __init__(self, fast: bool | None = None, max_score: int | None = None):
        self.fast = fast
        self.max_score = max_score

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        before = machine.snapshot()
        m_len, n_len = len(pair.pattern), len(pair.text)
        if m_len == 0 or n_len == 0:
            machine.scalar(4)
            return self._wrap(machine, before, max(m_len, n_len))
        fast = self.fast if self.fast is not None else (
            pair.max_length > FAST_LENGTH_THRESHOLD
        )
        uid = machine.name_uid("bi")
        p_codes = pair.pattern.codes
        t_codes = pair.text.codes
        pbuf = machine.new_buffer(f"bi_p{uid}", p_codes, elem_bytes=1)
        tbuf = machine.new_buffer(f"bi_t{uid}", t_codes, elem_bytes=1)
        prbuf = machine.new_buffer(f"bi_pr{uid}", p_codes[::-1].copy(), elem_bytes=1)
        trbuf = machine.new_buffer(f"bi_tr{uid}", t_codes[::-1].copy(), elem_bytes=1)
        fwd_kernel = VecExtendKernel(pbuf, tbuf)
        bwd_kernel = VecExtendKernel(prbuf, trbuf)
        consts = fwd_kernel.consts(machine, m_len, n_len)
        cost_model = fwd_kernel.cost_model(machine) if fast else None
        z = n_len - m_len

        def extend_fwd(wave: MachineWavefront):
            return extend_wave_with_kernel_gen(
                machine, wave, fwd_kernel, consts, fast, cost_model
            )

        def extend_bwd(wave: MachineWavefront):
            return extend_wave_with_kernel_gen(
                machine, wave, bwd_kernel, consts, fast, cost_model
            )

        fwd = init_root_wave(machine)
        yield from extend_fwd(fwd)
        bwd = init_root_wave(machine)
        yield from extend_bwd(bwd)
        s_f = s_b = 0
        while not account_overlap_scan(machine, fwd, bwd, n_len, z):
            if self.max_score is not None and s_f + s_b >= self.max_score:
                raise AlignmentError("BiWFA exceeded max_score")
            if s_f <= s_b:
                fwd = next_machine_wave(machine, fwd, m_len, n_len)
                yield from extend_fwd(fwd)
                s_f += 1
            else:
                bwd = next_machine_wave(machine, bwd, m_len, n_len)
                yield from extend_bwd(bwd)
                s_b += 1
        machine.scalar(8)  # breakpoint extraction bookkeeping
        return self._wrap(machine, before, s_f + s_b)
