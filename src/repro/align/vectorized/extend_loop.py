"""The VEC extend inner loop and its scheduling / fast-path machinery.

Real vectorised extend kernels process *blocks*, not single characters:
each lane gathers an unaligned 64-bit window of the sequence (8 symbols),
XORs pattern against text, converts the trailing matching bits into a
symbol count (``RBIT`` + ``CLZ`` + shift), clamps against the sequence
ends and advances:

    while any lane active:
        a = gather64(pattern, v);  b = gather64(text, h)
        c = ctz(a ^ b) >> 3                      # matching symbols
        c = min(c, m - v, n - h)
        v += c; h += c
        active = (c == 8) & (v < m) & (h < n)

Production kernels also *software-pipeline* the loop across independent
diagonal chunks so the gather/ALU latency chain of one chunk hides under
the issue slots of the others; :func:`run_interleaved` reproduces this by
round-robining one iteration of every live chunk, which the scoreboard
overlaps naturally.  With many chunks the wave becomes issue-bound
(gather AGU occupancy — the bottleneck the paper attacks); with one chunk
it degenerates to the serial latency chain.

Per-window Python execution is exact but too slow for 30Kbp reads.
:class:`LoopCostModel` measures the loop body's issue occupancy and
serial cost per active-lane count once, and :func:`account_wave_extend`
replays a whole wave as ``max(issue-bound, longest-chunk serial bound)``.
Tests pin the fast path against the instruction-level path.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.cache import CALIBRATION
from repro.config import SystemConfig
from repro.errors import MachineError
from repro.vector.fleet import FleetStep, drive_serial, session_step
from repro.vector.machine import VectorMachine
from repro.vector.program import ReplaySession
from repro.vector.register import Pred, SimBuffer, VReg
from repro.vector.stats import MachineStats

#: Symbols per 64-bit window in the byte-oriented VEC loop.
VEC_WINDOW = 8


class ExtendConsts:
    """Loop-invariant broadcast registers, hoisted once per pair."""

    __slots__ = (
        "m_len", "n_len", "window", "mvec", "nvec", "mtop", "ntop", "wtop",
        "replay",
    )

    def __init__(
        self, machine: VectorMachine, m_len: int, n_len: int, window: int
    ) -> None:
        self.m_len = m_len
        self.n_len = n_len
        self.window = window
        self.mvec = machine.dup(m_len, ebits=64)
        self.nvec = machine.dup(n_len, ebits=64)
        self.mtop = machine.dup(m_len - 1, ebits=64)
        self.ntop = machine.dup(n_len - 1, ebits=64)
        self.wtop = machine.dup(window - 1, ebits=64)
        #: Replay sessions per (machine, buffers) using these constants
        #: (see :mod:`repro.vector.program`); the captured programs bake
        #: the broadcast registers above, so the cache lives here.
        self.replay = {}


class ChunkState:
    """Mutable per-chunk loop state: offsets and the live predicate."""

    __slots__ = ("v", "h", "inb")

    def __init__(self, v: VReg, h: VReg, inb: Pred) -> None:
        self.v = v
        self.h = h
        self.inb = inb

    @property
    def alive(self) -> bool:
        return bool(self.inb.data.any())


def enter_extend(
    machine: VectorMachine,
    consts: ExtendConsts,
    v: VReg,
    h: VReg,
    active: Pred,
) -> ChunkState:
    """Loop entry: build the in-bounds predicate."""
    pv = machine.cmp("lt", v, consts.m_len, pred=active)
    inb = machine.cmp("lt", h, consts.n_len, pred=pv)
    return ChunkState(v, h, inb)


def enter_extend_many(
    machine: VectorMachine,
    consts: ExtendConsts,
    chunks: list[tuple[VReg, VReg, Pred]],
) -> list[ChunkState]:
    """Stage-major loop entry for a set of chunks (overlaps the cmps)."""
    pvs = [
        machine.cmp("lt", v, consts.m_len, pred=a) for v, _h, a in chunks
    ]
    inbs = [
        machine.cmp("lt", h, consts.n_len, pred=pv)
        for (_v, h, _a), pv in zip(chunks, pvs)
    ]
    return [
        ChunkState(v, h, inb) for (v, h, _a), inb in zip(chunks, inbs)
    ]


def vec_step(
    machine: VectorMachine,
    pbuf: SimBuffer,
    tbuf: SimBuffer,
    consts: ExtendConsts,
    st: ChunkState,
) -> None:
    """One iteration of the VEC word-window extend body."""
    m = machine
    inb = st.inb
    a = m.gather64(pbuf, st.v, pred=inb)
    b = m.gather64(tbuf, st.h, pred=inb)
    x = m.xor(a, b, pred=inb)
    tz = m.clz(m.rbit(x, pred=inb), pred=inb)
    cnt = m.shr(tz, 3, pred=inb)
    c = m.min(cnt, m.sub(consts.mvec, st.v, pred=inb), pred=inb)
    c = m.min(c, m.sub(consts.nvec, st.h, pred=inb), pred=inb)
    st.v = m.add(st.v, c, pred=inb)
    st.h = m.add(st.h, c, pred=inb)
    full = m.cmp("eq", c, VEC_WINDOW, pred=inb)
    pv = m.cmp("lt", st.v, consts.m_len, pred=full)
    st.inb = m.cmp("lt", st.h, consts.n_len, pred=pv)


def vec_extend(
    machine: VectorMachine,
    pbuf: SimBuffer,
    tbuf: SimBuffer,
    v: VReg,
    h: VReg,
    active: Pred,
    m_len: int,
    n_len: int,
    consts: ExtendConsts | None = None,
    iter_hook=None,
):
    """Standalone (single-chunk, serial) extend; returns (v, h)."""
    if consts is None:
        consts = ExtendConsts(machine, m_len, n_len, VEC_WINDOW)
    st = enter_extend(machine, consts, v, h, active)
    if iter_hook is None and ReplaySession.enabled(machine):
        # Capture the loop body once per (machine, buffers) and hand the
        # whole guard loop to the session: with trace trees on it runs
        # loop-in-kernel (the ``ptest_spec`` guard compiled into the
        # trace, mismatch tails on compiled side exits); otherwise the
        # guard branch stays interpreted between per-block replays.
        key = (id(machine), id(pbuf), id(tbuf))
        session = consts.replay.get(key)
        if session is None:
            session = consts.replay[key] = ReplaySession(
                machine,
                lambda mm, ss: vec_step(mm, pbuf, tbuf, consts, ss),
                name="vec-extend",
            )
        session.run_loop(st)
        return st.v, st.h
    while machine.ptest_spec(st.inb):
        vec_step(machine, pbuf, tbuf, consts, st)
        if iter_hook is not None:
            iter_hook(machine)
    return st.v, st.h


def interleave_requests(machine: VectorMachine, chunks: list, request_fn):
    """Generator core of :func:`run_interleaved` for the fleet driver.

    Yields one :class:`~repro.vector.fleet.FleetStep` per live chunk per
    round.  The driver *executes* the request before resuming the
    generator, so the ``POR``/``ptest`` guard sequence after each
    ``yield`` sees the post-step ``inb`` — per-machine op order is
    exactly the inline loop's.
    """
    combined = None
    live = []
    for st in chunks:
        combined = st.inb if combined is None else machine.por(combined, st.inb)
        if st.alive:
            live.append(st)
    if combined is None or not machine.ptest_spec(combined):
        return
    while live:
        combined = None
        for st in live:
            yield request_fn(st)
            combined = st.inb if combined is None else machine.por(combined, st.inb)
        machine.ptest_spec(combined)
        live = [c for c in live if c.alive]


def run_interleaved(machine: VectorMachine, chunks: list, step_fn) -> None:
    """Round-robin one iteration of every live chunk (software pipelining).

    ``chunks`` holds :class:`ChunkState` objects after :func:`enter_extend`;
    ``step_fn(machine, state)`` emits one loop-body iteration.  Each round
    issues every live chunk's body back-to-back, so the scoreboard hides
    one chunk's latency chain under the others'; the round loop branches
    once per round on a combined live predicate (one ``POR`` per chunk +
    a single predicted test), so only the final wave exit mispredicts.
    """
    drive_serial(
        interleave_requests(
            machine,
            chunks,
            lambda st: FleetStep(
                machine, lambda st=st: step_fn(machine, st)
            ),
        )
    )


# ----------------------------------------------------------------------
# Iteration math shared by all window loops
# ----------------------------------------------------------------------
def window_iterations(
    runs: np.ndarray, bounds: np.ndarray, entered: np.ndarray, window: int
) -> np.ndarray:
    """Loop iterations per lane of a window-at-a-time extend loop.

    A lane with run ``L`` consumes ``L // window + 1`` iterations (the
    last window is partial or empty), except when the run ends exactly on
    a window boundary *at* the sequence boundary (``L % window == 0`` and
    ``L == B``), where the bounds check retires the lane one iteration
    earlier.  Lanes that never enter iterate zero times.
    """
    runs = np.asarray(runs, dtype=np.int64)
    bounds = np.asarray(bounds, dtype=np.int64)
    base = runs // window + 1
    exact = (runs % window == 0) & (runs == bounds) & (runs > 0)
    iters = np.where(exact, runs // window, base)
    return np.where(entered & (bounds > 0), iters, 0)


def extend_iterations(
    runs: np.ndarray, bounds: np.ndarray, entered: np.ndarray
) -> np.ndarray:
    """Iterations of the VEC loop (8-symbol windows)."""
    return window_iterations(runs, bounds, entered, VEC_WINDOW)


def active_counts(iters: np.ndarray) -> np.ndarray:
    """Per-iteration active-lane counts: ``a_j = #{i: iters_i >= j}``."""
    iters = np.asarray(iters, dtype=np.int64)
    max_iter = int(iters.max()) if iters.size else 0
    if max_iter == 0:
        return np.zeros(0, dtype=np.int64)
    hist = np.bincount(iters[iters > 0], minlength=max_iter + 1)
    # a_j = number of lanes with iters >= j, j = 1..max_iter.
    return np.cumsum(hist[::-1])[::-1][1:]


# ----------------------------------------------------------------------
# Measured loop costs
# ----------------------------------------------------------------------
class _StopLoop(Exception):
    """Internal: bounds a measurement run."""


class LoopCostModel:
    """Measured steady-state per-iteration cost of an extend loop.

    ``per_iteration(k)`` is the :class:`MachineStats` delta of one serial
    loop-body iteration with ``k`` active lanes: its ``busy`` counters are
    the issue occupancy (the issue-bound contribution under pipelining)
    and its ``cycles`` the serial latency chain.  ``entry()`` is the fixed
    entry/exit cost.  Measurements run once per parameter set and are
    kept in the shared calibration cache (:mod:`repro.cache`), which can
    persist them across processes and CLI runs.
    """

    kind = "base"
    lanes_ebits = 64

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        self.lanes = system.lanes_for(self.lanes_ebits)
        self._memo: dict | None = None
        self._key = ("loop-cost", self.kind) + self._key_extra() + (
            system.vlen_bits,
            system.lat_gather_base,
            system.lat_vector_arith,
            system.lat_predicate,
            system.mispredict_penalty,
            system.l1d.load_to_use,
        )

    def _key_extra(self) -> tuple:
        return ()

    # -- subclass hooks -------------------------------------------------
    def _setup(self) -> tuple[VectorMachine, object]:
        """Build a scratch machine + context with long all-match sequences."""
        raise NotImplementedError

    def _run(self, machine, ctx, v, h, act, length, hook) -> None:
        raise NotImplementedError

    # -- measurement ----------------------------------------------------
    def _measure(self) -> dict:
        table: dict = {}
        for k in range(0, self.lanes + 1):
            machine, ctx = self._setup()
            length = 4096
            v0 = np.where(np.arange(self.lanes) < k, 0, length)
            v = machine.from_values(v0, self.lanes_ebits)
            h = machine.from_values(v0, self.lanes_ebits)
            act = machine.ptrue(self.lanes_ebits)
            machine.barrier()
            if k == 0:
                before = machine.snapshot()
                self._run(machine, ctx, v, h, act, length, None)
                machine.barrier()
                table["entry"] = machine.snapshot().delta(before)
                continue
            snaps: list[MachineStats] = []
            seen = [0]

            def hook(m, _s=snaps, _n=seen):
                _s.append(m.snapshot())
                _n[0] += 1
                if _n[0] >= 6:
                    raise _StopLoop()

            try:
                self._run(machine, ctx, v, h, act, length, hook)
            except _StopLoop:
                pass
            table[k] = snaps[4].delta(snaps[3])
        return table

    def _table(self) -> dict:
        if self._memo is None:
            table = CALIBRATION.get(self._key)
            if table is None:
                table = self._measure()
                CALIBRATION.put(self._key, table)
            self._memo = table
        return self._memo

    # -- replay ---------------------------------------------------------
    def per_iteration(self, k: int) -> MachineStats:
        if not 0 <= k <= self.lanes:
            raise MachineError(f"active count {k} out of range")
        if k == 0:
            return MachineStats()
        return self._table()[k]

    def entry(self) -> MachineStats:
        return self._table()["entry"]

    @property
    def stall_category(self) -> str:
        """Category carrying exposed dependency latency in fast replays."""
        return "vector"


class ExtendCostModel(LoopCostModel):
    """Cost of the VEC word-window extend loop."""

    kind = "vec-window"
    lanes_ebits = 64

    def _setup(self):
        machine = VectorMachine(self.system)
        length = 4096
        data = np.zeros(length, dtype=np.uint8)
        pbuf = machine.new_buffer("p", data, elem_bytes=1)
        tbuf = machine.new_buffer("t", data, elem_bytes=1)
        machine.mem.touch(pbuf.base, length)
        machine.mem.touch(tbuf.base, length)
        consts = ExtendConsts(machine, length, length, VEC_WINDOW)
        return machine, (pbuf, tbuf, consts)

    def _run(self, machine, ctx, v, h, act, length, hook):
        pbuf, tbuf, consts = ctx
        vec_extend(
            machine, pbuf, tbuf, v, h, act, length, length,
            consts=consts, iter_hook=hook,
        )

    @property
    def stall_category(self) -> str:
        return "memory"


def account_wave_extend(
    machine: VectorMachine,
    cost_model: LoopCostModel,
    chunk_iter_series: list[np.ndarray],
) -> int:
    """Fast-path replay of one interleaved wave of extend chunks.

    ``chunk_iter_series`` holds each chunk's per-iteration active-lane
    counts.  Instruction and busy (issue) counters sum exactly; the clock
    advances by ``max(total issue, longest chunk's serial time)`` — the
    software-pipelining bound.  Returns total iterations (for QBUFFER
    read accounting by QUETZAL callers).
    """
    entry = cost_model.entry()
    # The interleaved schedule branches once per *round*, so only one
    # wave-exit branch mispredicts; the measured per-chunk entry includes
    # one mispredict, credited back for all chunks but the first.
    penalty = machine.system.mispredict_penalty
    instructions: Counter = Counter()
    busy: Counter = Counter()
    extra_stall = 0
    total_iters = 0
    serial_worst = 0
    n_chunks = len(chunk_iter_series)
    for counts in chunk_iter_series:
        serial = entry.cycles
        for k in counts.tolist():
            if k == 0:
                continue
            per = cost_model.per_iteration(int(k))
            instructions.update(per.instructions)
            busy.update(per.busy)
            serial += per.cycles
            total_iters += 1
        serial_worst = max(serial_worst, serial)
    for _ in range(n_chunks):
        instructions.update(entry.instructions)
        busy.update(entry.busy)
    extra_stall += entry.stall.get("control", 0) * n_chunks - penalty * max(
        0, n_chunks - 1
    )
    extra_stall = max(0, extra_stall)
    issue_total = sum(busy.values())
    extra = max(extra_stall, serial_worst - issue_total)
    machine.account_mix(
        instructions, busy, extra_stall=extra,
        stall_category=cost_model.stall_category,
    )
    return total_iters


def account_extend_memory(
    machine: VectorMachine,
    pbuf: SimBuffer,
    tbuf: SimBuffer,
    v0: np.ndarray,
    h0: np.ndarray,
    iters: np.ndarray,
) -> None:
    """Fast-path memory accounting for VEC extend lanes.

    The instruction-level loop issues one 8-byte window access per active
    lane per iteration to each sequence.  The fast path touches each
    distinct cache line once (keeping hierarchy contents truthful and
    charging cold-line penalties) and accounts the remaining requests as
    the L1 hits they would have been.
    """
    total_requests = 2 * int(iters.sum())
    if total_requests == 0:
        return
    line = machine.system.l1d.line_bytes
    l1_lat = machine.system.l1d.load_to_use
    lines: set[int] = set()
    for buf, starts in ((pbuf, v0), (tbuf, h0)):
        for s, it in zip(starts.tolist(), iters.tolist()):
            if it <= 0:
                continue
            a0 = buf.addr_of(int(s))
            a1 = buf.addr_of(min(len(buf.data) - 1, int(s) + int(it) * VEC_WINDOW))
            lines.update(range(a0 - a0 % line, a1 + 1, line))
    latencies = machine.mem.access_line_batch(
        np.fromiter(sorted(lines), dtype=np.int64, count=len(lines))
    )
    extra = int(np.maximum(latencies - l1_lat, 0).sum())
    machine.mem.account_extra_hits(max(0, total_requests - len(lines)))
    if extra:
        machine.account_block("memory", stall=extra, stall_category="memory")


def lane_iterations(
    p_codes: np.ndarray,
    t_codes: np.ndarray,
    v: VReg,
    h: VReg,
    valid: Pred,
    m_len: int,
    n_len: int,
    window: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Functional run lengths + iteration counts for one chunk's lanes.

    Returns ``(runs, iters, v0, h0)``.
    """
    from repro.align.wavefront import lcp  # local import to avoid a cycle

    mask = valid.data
    v0 = np.where(mask, v.data, 0)
    h0 = np.where(mask, h.data, 0)
    runs = np.zeros(len(mask), dtype=np.int64)
    for i in np.flatnonzero(mask):
        runs[i] = lcp(p_codes, t_codes, int(v0[i]), int(h0[i]))
    bounds = np.minimum(m_len - v0, n_len - h0)
    entered = mask & (v0 < m_len) & (h0 < n_len)
    iters = window_iterations(runs, bounds, entered, window)
    return runs, iters, v0, h0


# ----------------------------------------------------------------------
# Kernel strategies + the shared chunk orchestrator
# ----------------------------------------------------------------------
class ExtendKernel:
    """One extend style (VEC / QZ / QZ+C, forward or backward).

    Bundles the loop-body step, the window size, the functional view of
    the sequences, the cost model used by the fast path, and how the fast
    path accounts the style's memory traffic.
    """

    window: int = VEC_WINDOW

    def consts(self, machine: VectorMachine, m_len: int, n_len: int) -> ExtendConsts:
        return ExtendConsts(machine, m_len, n_len, self.window)

    def step(self, machine: VectorMachine, consts: ExtendConsts, st: ChunkState):
        raise NotImplementedError

    def codes(self) -> tuple[np.ndarray, np.ndarray]:
        """Functional symbol arrays (pattern, text) the loop compares."""
        raise NotImplementedError

    def cost_model(self, machine: VectorMachine) -> LoopCostModel:
        raise NotImplementedError

    def account_memory(
        self, machine: VectorMachine, chunk_mem, total_iters: int
    ) -> None:
        """Fast-path traffic accounting; ``chunk_mem`` is [(v0, h0, iters)]."""
        raise NotImplementedError


class VecExtendKernel(ExtendKernel):
    """Word-window gathers from cached sequence buffers."""

    window = VEC_WINDOW

    def __init__(self, pbuf: SimBuffer, tbuf: SimBuffer) -> None:
        self.pbuf = pbuf
        self.tbuf = tbuf

    def step(self, machine, consts, st):
        vec_step(machine, self.pbuf, self.tbuf, consts, st)

    def codes(self):
        return self.pbuf.data, self.tbuf.data

    def cost_model(self, machine):
        return ExtendCostModel(machine.system)

    def account_memory(self, machine, chunk_mem, total_iters):
        for v0, h0, iters in chunk_mem:
            account_extend_memory(machine, self.pbuf, self.tbuf, v0, h0, iters)


def extend_chunks(
    machine: VectorMachine,
    kernel: ExtendKernel,
    consts: ExtendConsts,
    chunks: list[tuple[VReg, VReg, Pred]],
    fast: bool,
    cost_model: LoopCostModel | None = None,
) -> list[tuple[VReg, np.ndarray]]:
    """Extend a set of lane chunks; returns per-chunk (h', runs).

    Slow mode interleaves every chunk's loop (software pipelining);
    fast mode derives iteration counts from run lengths and replays the
    measured wave bound.  This is the inline driver over
    :func:`extend_chunks_gen` — the fleet scheduler drives the same
    generator across pairs.
    """
    return drive_serial(
        extend_chunks_gen(machine, kernel, consts, chunks, fast, cost_model)
    )


def extend_chunks_gen(
    machine: VectorMachine,
    kernel: ExtendKernel,
    consts: ExtendConsts,
    chunks: list[tuple[VReg, VReg, Pred]],
    fast: bool,
    cost_model: LoopCostModel | None = None,
):
    """Generator form of :func:`extend_chunks` yielding fleet requests.

    Each loop-body iteration is yielded as a
    :class:`~repro.vector.fleet.FleetStep` so the fleet scheduler can fuse
    it with the matching iteration of other pairs; the fast path never
    yields.  Returns the same per-chunk ``(h', runs)`` list (via
    ``StopIteration.value`` / ``yield from``).
    """
    if not chunks:
        return []
    m_len, n_len = consts.m_len, consts.n_len
    if not fast:
        states = enter_extend_many(machine, consts, chunks)
        if ReplaySession.enabled(machine):
            # All chunks share one captured body (they run the same
            # straight-line step); the session lives on the kernel so
            # successive columns/waves of one pair keep replaying it.
            cached = getattr(kernel, "_replay_session", None)
            if (
                cached is None
                or cached[0] is not machine
                or cached[1] is not consts
            ):
                session = ReplaySession(
                    machine,
                    lambda mm, ss: kernel.step(mm, consts, ss),
                    name=type(kernel).__name__,
                )
                kernel._replay_session = cached = (machine, consts, session)
            session = cached[2]
            request_fn = lambda ss: session_step(session, ss)  # noqa: E731
        else:
            request_fn = lambda ss: FleetStep(  # noqa: E731
                machine, lambda ss=ss: kernel.step(machine, consts, ss)
            )
        yield from interleave_requests(machine, states, request_fn)
        out = []
        for st, (v, h, valid) in zip(states, chunks):
            out.append((st.h, st.h.data - h.data))
        return out
    if cost_model is None:
        cost_model = kernel.cost_model(machine)
    p_codes, t_codes = kernel.codes()
    series = []
    chunk_mem = []
    results = []
    for v, h, valid in chunks:
        runs, iters, v0, h0 = lane_iterations(
            p_codes, t_codes, v, h, valid, m_len, n_len, kernel.window
        )
        series.append(active_counts(iters))
        chunk_mem.append((v0, h0, iters))
        new_h = np.where(valid.data, h.data + runs, h.data)
        results.append((new_h, runs))
    total = account_wave_extend(machine, cost_model, series)
    kernel.account_memory(machine, chunk_mem, total)
    # The last iteration's arithmetic tail is still in flight when the
    # accounting block ends; consumers (the wavefront stores) wait for it.
    ready = machine.clock + 2 * machine.system.lat_vector_arith
    return [
        (VReg(new_h, 64, ready, category=cost_model.stall_category), runs)
        for new_h, runs in results
    ]
