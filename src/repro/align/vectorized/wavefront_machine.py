"""Shared machinery for running wavefront algorithms on the simulated CPU.

Wavefronts live in simulated buffers (int32 offsets with two guard cells
of ``INV`` on each side so the k-1/k/k+1 neighbour loads of the recurrence
never run off the array).  The recurrence itself (Section II-B) is the
same for the VEC and QUETZAL styles — QUETZAL only replaces the *extend*
step — so both import from here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import AlignmentError
from repro.vector.machine import VectorMachine

#: Invalid-offset sentinel (int32-safe, far below any real offset).
INV = -(1 << 30)
#: Validity threshold for compares.
INV_THRESH = INV // 2
_GUARD = 2


class MachineWavefront:
    """One wavefront in simulated memory: ``[INV, INV, offsets..., INV, INV]``."""

    __slots__ = ("machine", "lo", "hi", "buf")

    def __init__(self, machine: VectorMachine, lo: int, hi: int) -> None:
        if hi < lo:
            raise AlignmentError(f"empty wavefront [{lo}, {hi}]")
        width = hi - lo + 1
        data = np.full(width + 2 * _GUARD, INV, dtype=np.int64)
        self.machine = machine
        self.lo = lo
        self.hi = hi
        # Machine-local numbering (not a module global): fleet execution
        # interleaves many machines, and each pair must see the exact
        # buffer-name sequence a solo run would.
        self.buf = machine.new_buffer(
            f"wf{machine.name_uid('wf')}", data, elem_bytes=4
        )

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def pos(self, k: int) -> int:
        """Buffer element index of diagonal ``k`` (guards included)."""
        return k - self.lo + _GUARD

    def host_offsets(self) -> np.ndarray:
        """Functional view of the offsets (no simulated cost)."""
        return self.buf.data[_GUARD : _GUARD + self.width]

    def host_get(self, k: int) -> int:
        if self.lo <= k <= self.hi:
            return int(self.buf.data[self.pos(k)])
        return INV


def init_root_wave(machine: VectorMachine) -> MachineWavefront:
    """Wave 0: diagonal 0 at offset 0 (plus the store that writes it)."""
    wave = MachineWavefront(machine, 0, 0)
    zero = machine.dup(0, ebits=32)
    machine.store(wave.buf, wave.pos(0), zero, pred=machine.whilelt(0, 1))
    return wave


def next_machine_wave(
    machine: VectorMachine,
    old: MachineWavefront,
    m_len: int,
    n_len: int,
) -> MachineWavefront:
    """Vectorised edit-WFA recurrence: new wave from the previous one."""
    m = machine
    new_lo = max(old.lo - 1, -m_len)
    new_hi = min(old.hi + 1, n_len)
    wave = MachineWavefront(m, new_lo, new_hi)
    m.scalar(3)  # wave allocation / loop setup bookkeeping
    lanes = m.lanes(32)
    inv_vec = m.dup(INV, ebits=32)
    # Stage-major emission: all chunks' loads first, then all adds, and so
    # on — the order a software-pipelined kernel issues in, letting the
    # scoreboard overlap one chunk's latency with the others' issue slots.
    starts = list(range(new_lo, new_hi + 1, lanes))
    acts = [m.whilelt(0, min(lanes, new_hi - k0 + 1)) for k0 in starts]
    kvecs = [m.iota(32, start=k0) for k0 in starts]
    ins_srcs = [
        m.load(old.buf, old.pos(k0 - 1), 32, pred=a) for k0, a in zip(starts, acts)
    ]
    mis_srcs = [
        m.load(old.buf, old.pos(k0), 32, pred=a) for k0, a in zip(starts, acts)
    ]
    del_srcs = [
        m.load(old.buf, old.pos(k0 + 1), 32, pred=a) for k0, a in zip(starts, acts)
    ]
    ins = [m.add(s, 1, pred=a) for s, a in zip(ins_srcs, acts)]
    mis = [m.add(s, 1, pred=a) for s, a in zip(mis_srcs, acts)]
    best = [m.max(i, s, pred=a) for i, s, a in zip(ins, mis, acts)]
    best = [m.max(b, d, pred=a) for b, d, a in zip(best, del_srcs, acts)]
    # Valid offsets satisfy 0 <= h <= min(n, m + k).
    limits = [
        m.min(m.add(k, m_len, pred=a), n_len, pred=a) for k, a in zip(kvecs, acts)
    ]
    oks = [
        m.pand(m.cmp("ge", b, 0, pred=a), m.cmp("le", b, lim, pred=a))
        for b, lim, a in zip(best, limits, acts)
    ]
    results = [m.sel(ok, b, inv_vec) for ok, b in zip(oks, best)]
    for k0, a, result in zip(starts, acts, results):
        m.store(wave.buf, wave.pos(k0), result, pred=a)
    return wave


def check_termination(
    machine: VectorMachine, wave: MachineWavefront, k_end: int, n_len: int
) -> bool:
    """The per-wave 'reached the end cell?' check (scalar read + compare)."""
    machine.scalar(2)
    if wave.lo <= k_end <= wave.hi:
        machine.mem.access(wave.buf.addr_of(wave.pos(k_end)), 4)
        return wave.host_get(k_end) >= n_len
    return False


def account_traceback(
    machine: VectorMachine, waves: list[MachineWavefront], distance: int
) -> None:
    """Charge the traceback walk (the paper includes it in all timings).

    Each of the ``distance`` steps reads the three candidate offsets from
    the previous wave and does a dozen scalar comparisons/updates.
    """
    k = 0
    for s in range(distance, 0, -1):
        prev = waves[s - 1]
        pos = min(max(prev.pos(k), 0), len(prev.buf.data) - 3)
        machine.mem.access(prev.buf.addr_of(pos), 12)
        machine.scalar(12)


def extend_wave_with_kernel(
    machine: VectorMachine,
    wave: MachineWavefront,
    kernel,
    consts,
    fast: bool,
    cost_model=None,
) -> None:
    """Extend every diagonal of ``wave`` through an extend kernel.

    Diagonals are processed in 8-lane chunks (one per 64-bit VPU lane);
    all chunks of the wave run interleaved (slow mode) or are replayed as
    one measured wave bound (fast mode) by
    :func:`repro.align.vectorized.extend_loop.extend_chunks`.
    """
    from repro.vector.fleet import drive_serial

    drive_serial(
        extend_wave_with_kernel_gen(machine, wave, kernel, consts, fast, cost_model)
    )


def extend_wave_with_kernel_gen(
    machine: VectorMachine,
    wave: MachineWavefront,
    kernel,
    consts,
    fast: bool,
    cost_model=None,
):
    """Generator form of :func:`extend_wave_with_kernel` (fleet requests)."""
    from repro.align.vectorized.extend_loop import extend_chunks_gen

    m = machine
    lanes = m.lanes(64)
    # Stage-major chunk preparation (see next_machine_wave).
    starts = list(range(wave.lo, wave.hi + 1, lanes))
    acts = [
        m.whilelt(0, min(lanes, wave.hi - k0 + 1), ebits=64) for k0 in starts
    ]
    offs = [
        m.load(wave.buf, wave.pos(k0), 64, pred=a) for k0, a in zip(starts, acts)
    ]
    kvecs = [m.iota(64, start=k0) for k0 in starts]
    valids = [m.cmp("gt", off, INV_THRESH, pred=a) for off, a in zip(offs, acts)]
    vs = [m.sub(off, k, pred=va) for off, k, va in zip(offs, kvecs, valids)]
    chunks = list(zip(vs, offs, valids))
    results = yield from extend_chunks_gen(
        m, kernel, consts, chunks, fast, cost_model
    )
    for k0, act, (h2, _runs) in zip(starts, acts, results):
        m.store(wave.buf, wave.pos(k0), h2, pred=act)


ExtendWaveFn = Callable[[VectorMachine, MachineWavefront], None]


def run_wavefront_loop(
    machine: VectorMachine,
    m_len: int,
    n_len: int,
    extend_wave: ExtendWaveFn,
    max_score: int | None = None,
) -> tuple[int, list[MachineWavefront]]:
    """The top-level WFA loop: extend, check, recurse. Returns (s, waves)."""
    from repro.vector.fleet import drive_serial

    def extend_gen(mach, wv):
        extend_wave(mach, wv)
        return
        yield  # pragma: no cover - marks this as a generator

    return drive_serial(
        run_wavefront_loop_gen(machine, m_len, n_len, extend_gen, max_score)
    )


def run_wavefront_loop_gen(
    machine: VectorMachine,
    m_len: int,
    n_len: int,
    extend_wave_gen,
    max_score: int | None = None,
):
    """Generator form of :func:`run_wavefront_loop`.

    ``extend_wave_gen(machine, wave)`` returns a generator yielding fleet
    step requests (e.g. :func:`extend_wave_with_kernel_gen`); the
    wavefront recurrence and termination checks between waves run
    serially when the driver resumes this fiber.
    """
    k_end = n_len - m_len
    wave = init_root_wave(machine)
    yield from extend_wave_gen(machine, wave)
    waves = [wave]
    s = 0
    while not check_termination(machine, wave, k_end, n_len):
        if max_score is not None and s >= max_score:
            raise AlignmentError(f"wavefront loop exceeded max_score={max_score}")
        wave = next_machine_wave(machine, wave, m_len, n_len)
        yield from extend_wave_gen(machine, wave)
        waves.append(wave)
        s += 1
    return s, waves
