"""Hand-vectorised (SVE-intrinsics style) implementations (VEC in Fig. 13)."""

from repro.align.vectorized.extend_loop import (
    vec_extend,
    extend_iterations,
    window_iterations,
    ExtendCostModel,
    VecExtendKernel,
    extend_chunks,
)
from repro.align.vectorized.wfa_vec import WfaVec
from repro.align.vectorized.biwfa_vec import BiwfaVec
from repro.align.vectorized.ss_vec import SsVec
from repro.align.dp_machine import KswVec, ParasailNwVec

__all__ = [
    "vec_extend",
    "extend_iterations",
    "window_iterations",
    "ExtendCostModel",
    "VecExtendKernel",
    "extend_chunks",
    "WfaVec",
    "BiwfaVec",
    "SsVec",
    "KswVec",
    "ParasailNwVec",
]
