"""Tiled alignment for sequences beyond QBUFFER capacity (Section VI).

QUETZAL's QBUFFERs hold up to ~32.7Kbp of 2-bit-encoded sequence.  For
ultra-long reads (Oxford Nanopore reaches 2Mbp) the paper prescribes
software support: split the input into QBUFFER-sized subsequences with a
read mapper or a windowed/tiling scheme and align the pieces
independently.  :class:`TiledAligner` implements the windowed scheme:

* both sequences are cut into aligned tiles of ``tile`` symbols (the
  anchor-free variant of minimap2-style chaining, adequate when the pair
  is near-diagonal, e.g. candidate read pairs at sequencing error rates);
* each tile pair is staged and aligned by the wrapped per-pair
  implementation (any style);
* per-tile distances are summed.

The result is an *upper bound* on the true edit distance: edits that
optimal alignment would place across a tile boundary may be counted in
both tiles.  At sequencing error rates the bound is tight (tests check
it against the exact distance); this mirrors the accuracy contract of
the windowed approaches the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.interface import Implementation, PairResult
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine


@dataclass(frozen=True)
class TileOutcome:
    """Distance bound plus per-tile detail."""

    distance_bound: int
    tile_distances: tuple
    num_tiles: int


class TiledAligner(Implementation):
    """Window-tiled wrapper around any per-pair aligner implementation."""

    def __init__(self, inner: Implementation, tile: int = 16_384) -> None:
        if tile < 64:
            raise AlignmentError(f"tile size too small: {tile}")
        self.inner = inner
        self.tile = tile
        self.algorithm = f"tiled-{inner.algorithm}"
        self.style = inner.style

    @property
    def requires_quetzal(self) -> bool:
        return self.inner.requires_quetzal

    def _tiles(self, pair: SequencePair):
        """Cut both sequences proportionally into ``ceil(len/tile)`` tiles.

        Proportional cuts keep the tile pair lengths matched even when
        indels have drifted the overall lengths apart.
        """
        m, n = len(pair.pattern), len(pair.text)
        count = max(1, -(-max(m, n) // self.tile))
        for i in range(count):
            p_lo = m * i // count
            p_hi = m * (i + 1) // count
            t_lo = n * i // count
            t_hi = n * (i + 1) // count
            yield SequencePair(
                pattern=pair.pattern[p_lo:p_hi],
                text=pair.text[t_lo:t_hi],
            )

    def run_pair(self, machine: VectorMachine, pair: SequencePair) -> PairResult:
        before = machine.snapshot()
        distances = []
        for tile_pair in self._tiles(pair):
            machine.scalar(6)  # tile bookkeeping / dispatch
            result = self.inner.run_pair(machine, tile_pair)
            if not isinstance(result.output, int):
                raise AlignmentError(
                    "TiledAligner wraps distance-producing aligners only"
                )
            distances.append(result.output)
        outcome = TileOutcome(
            distance_bound=sum(distances),
            tile_distances=tuple(distances),
            num_tiles=len(distances),
        )
        return self._wrap(machine, before, outcome)
