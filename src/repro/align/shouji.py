"""The Shouji pre-alignment filter (Alser et al. 2019).

SneakySnake's sibling filter, referenced alongside it throughout the
paper (Section I / II-C).  Shouji slides a small window (4 columns)
along the neighbourhood map of ``2E+1`` diagonals; within each window it
keeps the diagonal segment with the most matches, ORs those segments
into a *common subsequence bitmask*, and estimates the edit count as the
number of zero runs left in the mask.  Like SneakySnake it never
underestimates similarity (no false negatives): a pair within ``E``
edits is always accepted.

Included as a third member of the edit-distance-approximation family the
framework covers (with SneakySnake and Myers), and exercised against
SneakySnake in the filter-accuracy tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.wavefront import _codes
from repro.errors import AlignmentError

_WINDOW = 4


@dataclass(frozen=True)
class ShoujiResult:
    """Filter verdict for one pair."""

    accepted: bool
    estimated_edits: int
    threshold: int

    def __bool__(self) -> bool:
        return self.accepted


def shouji_filter(pattern, text, threshold: int) -> ShoujiResult:
    """Accept iff the Shouji edit estimate is within ``threshold``."""
    if threshold < 0:
        raise AlignmentError(f"threshold must be non-negative: {threshold}")
    p, t = _codes(pattern), _codes(text)
    n = len(p)
    if n == 0:
        return ShoujiResult(accepted=True, estimated_edits=0, threshold=threshold)
    # Neighbourhood map: match[k][j] == 1 iff p[j] == t[j + k].
    ks = range(-threshold, threshold + 1)
    match = np.zeros((len(ks), n), dtype=bool)
    for row, k in enumerate(ks):
        j_lo = max(0, -k)
        j_hi = min(n, len(t) - k)
        if j_hi > j_lo:
            match[row, j_lo:j_hi] = p[j_lo:j_hi] == t[j_lo + k : j_hi + k]
    # Overlapping sliding windows (step 1): OR the best diagonal segment
    # of every window into the common subsequence bitmask.  Overlap lets
    # matches from shifted diagonals cover both sides of an indel, which
    # is what preserves the no-false-negative guarantee.
    mask = np.zeros(n, dtype=bool)
    for start in range(0, n):
        window = match[:, start : start + _WINDOW]
        best_row = int(np.argmax(window.sum(axis=1)))
        mask[start : start + _WINDOW] |= window[best_row]
    # Every zero left in the mask witnesses at least one edit nearby.
    zeros = int(np.count_nonzero(~mask))
    estimate = zeros
    return ShoujiResult(
        accepted=estimate <= threshold, estimated_edits=estimate,
        threshold=threshold,
    )
