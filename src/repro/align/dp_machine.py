"""Classic DP (affine Gotoh) on the simulated CPU, anti-diagonal vectorised.

This is the paper's use case 3: ksw2-style banded global alignment and
parasail-style full-table NW, both processed along anti-diagonals
(Fig. 7).  Cells on diagonal ``d = i + j`` depend only on diagonals
``d-1`` (E/F) and ``d-2`` (substitution), so a chunk of 16 cells computes
in one pass of vector ops.

The VEC kernel's bottleneck is the one the paper names (Fig. 7 steps
1-2): every diagonal's loads read rolling-array lines *stored one
diagonal earlier*, and vector store-to-load forwarding is unsupported —
each such load stalls until the store drains
(``SystemConfig.store_to_load_visible``).

The QUETZAL variant (Fig. 7 steps 3-4) keeps the rolling H/E/F state in
the QBUFFERs when the band window fits (``qzstore`` commits immediately
and ``qzload`` reads it back without a drain), eliminating the hazard —
the mechanism behind the paper's modest 1.3-1.4x classic-DP gains.  For
full-table NW the window exceeds QBUFFER capacity, so the QZ variant
falls back to staging the 2-bit-encoded sequences only (the ``chars``
mode); EXPERIMENTS.md discusses where the measured gains land.

For long reads the per-chunk loop is fast-forwarded with a measured
steady-state chunk cost; the functional score comes from the scalar
reference and the DP-table traffic is accounted as a streaming pattern.
"""

from __future__ import annotations


import numpy as np

from repro.align.interface import Implementation, PairResult
from repro.cache import CALIBRATION
from repro.align.smith_waterman import banded_global_affine, nw_gotoh_global
from repro.align.types import Penalties
from repro.config import QZ_ESIZE_2BIT, QZ_ESIZE_8BIT, QZ_ESIZE_64BIT
from repro.errors import AlignmentError
from repro.genomics.generator import SequencePair
from repro.vector.machine import VectorMachine
from repro.vector.program import REPLAY_METER, ReplaySession, capture
from repro.vector.register import Pred, VReg
from repro.vector.stats import MachineStats

_INF = 1 << 28

#: Beyond this many DP cells the fast path replaces instruction-level runs.
FAST_CELL_THRESHOLD = 300_000


def _diag_range(d: int, m: int, n: int, band: int) -> tuple[int, int]:
    """Interior cell index range [ilo, ihi] of anti-diagonal ``d``."""
    ilo = max(1, d - n)
    ihi = min(m, d - 1)
    if band < m + n:
        ilo = max(ilo, (d - band + 1) // 2)
        ihi = min(ihi, (d + band) // 2)
    return ilo, ihi


class _DpStateMem:
    """Rolling anti-diagonal state in memory (H x3, E x2, F x2, guarded).

    The buffers opt into store-to-load hazard tracking: this is exactly
    the rolling state whose store-load round trips Fig. 7 targets.
    """

    kind = "mem"

    def __init__(self, machine: VectorMachine, m: int, uid: int) -> None:
        size = m + 3  # pos(i) = i + 1, guards at 0 and m+2
        init = np.full(size, _INF, dtype=np.int64)
        self._bufs = {}
        for key, gens in (("h", 3), ("e", 2), ("f", 2)):
            bufs = []
            for g in range(gens):
                buf = machine.new_buffer(f"dp{key}{g}_{uid}", init, elem_bytes=4)
                buf.track_forwarding = True
                bufs.append(buf)
            self._bufs[key] = bufs

    @staticmethod
    def pos(i: int) -> int:
        return i + 1

    def rotate(self) -> None:
        h = self._bufs["h"]
        self._bufs["h"] = [h[2], h[0], h[1]]
        for key in ("e", "f"):
            pair = self._bufs[key]
            self._bufs[key] = [pair[1], pair[0]]

    def read(
        self, machine: VectorMachine, kind: str, gen: int, i: int,
        pred: Pred,
    ) -> VReg:
        buf = self._bufs[kind][gen]
        return machine.load(buf, self.pos(i), 32, pred=pred)

    def write(
        self, machine: VectorMachine, kind: str, i: int, value: VReg, pred: Pred
    ) -> None:
        machine.store(self._bufs[kind][0], self.pos(i), value, pred=pred)

    def poke(self, kind: str, gen: int, i: int, value: int) -> None:
        buf = self._bufs[kind][gen]
        buf.data[self.pos(i)] = value
        buf.mark_dirty()

    def peek(self, kind: str, gen: int, i: int) -> int:
        return int(self._bufs[kind][gen].data[self.pos(i)])


class _DpStateQz:
    """Rolling anti-diagonal state resident in the QBUFFERs.

    Layout (64-bit elements): qbuf0 holds three H generations at offsets
    ``g*W``; qbuf1 holds two E generations at ``0, W`` and two F
    generations at ``2W, 3W``; ``W`` is the band window (ring-addressed
    by ``i mod (W-1)`` so absolute cell indices of any length map in).
    ``qzstore`` commits at once and ``qzload`` reads it back next cycle:
    no store-to-load drain (the Fig. 7 step 3-4 flow).
    """

    kind = "qz-state"
    _GEN_BASE = {("h", 0): 0, ("h", 1): 1, ("h", 2): 2,
                 ("e", 0): 0, ("e", 1): 1, ("f", 0): 2, ("f", 1): 3}
    _SEL = {"h": 0, "e": 1, "f": 1}

    def __init__(self, machine: VectorMachine, band: int, uid: int) -> None:
        qz = machine.quetzal
        cap = qz.config.capacity_elements(64)
        self.window = band + 4
        if 4 * self.window > cap:
            raise AlignmentError(
                f"band {band} exceeds QBUFFER rolling-state capacity"
            )
        self.machine = machine
        self.qz = qz
        qz.clear()
        qz.qzconf(4 * self.window, 4 * self.window, QZ_ESIZE_64BIT)
        init = np.full(4 * self.window, _INF, dtype=np.uint64)
        qz.load_values(0, init)
        qz.load_values(1, init)
        # Generation rotation is an offset permutation (register renames,
        # no data movement).
        self._gen_map = {"h": [0, 1, 2], "e": [0, 1], "f": [0, 1]}

    def pos(self, i: int) -> int:
        return (i + 1) % (self.window - 1)

    def _slot(self, kind: str, gen: int, i: int) -> int:
        phys = self._gen_map[kind][gen]
        base = (self._GEN_BASE[(kind, phys)] if kind == "h"
                else self._GEN_BASE[(kind, phys)])
        return base * self.window + self.pos(i)

    def rotate(self) -> None:
        h = self._gen_map["h"]
        self._gen_map["h"] = [h[2], h[0], h[1]]
        for key in ("e", "f"):
            pair = self._gen_map[key]
            self._gen_map[key] = [pair[1], pair[0]]
        self.machine.scalar(1)

    def _indices(self, kind: str, gen: int, i: int, lanes: int) -> np.ndarray:
        return np.asarray(
            [self._slot(kind, gen, i + lane) for lane in range(lanes)],
            dtype=np.int64,
        )

    def read(
        self, machine: VectorMachine, kind: str, gen: int, i: int, pred: Pred
    ) -> VReg:
        lanes = machine.lanes(32)
        idx = machine.from_values(self._indices(kind, gen, i, lanes), ebits=32)
        return self.qz.qzload(idx, self._SEL[kind], pred=pred)

    def write(
        self, machine: VectorMachine, kind: str, i: int, value: VReg, pred: Pred
    ) -> None:
        lanes = machine.lanes(32)
        idx = machine.from_values(self._indices(kind, 0, i, lanes), ebits=32)
        self.qz.qzstore(value, idx, self._SEL[kind], pred=pred)

    def poke(self, kind: str, gen: int, i: int, value: int) -> None:
        self.qz.qbuf[self._SEL[kind]].words[self._slot(kind, gen, i)] = np.uint64(
            value
        )

    def peek(self, kind: str, gen: int, i: int) -> int:
        return int(self.qz.qbuf[self._SEL[kind]].words[self._slot(kind, gen, i)])


class DpEngine:
    """Anti-diagonal affine DP runner for one (pair, band, style)."""

    def __init__(
        self,
        machine: VectorMachine,
        pair: SequencePair,
        band: int | None,
        penalties: Penalties,
        use_quetzal: bool,
        fast: bool | None,
        traceback_table: bool = True,
    ) -> None:
        self.machine = machine
        self.pair = pair
        self.pen = penalties
        self.m = len(pair.pattern)
        self.n = len(pair.text)
        self.band = band if band is not None else self.m + self.n
        self.use_quetzal = use_quetzal
        self.traceback_table = traceback_table
        cells = (
            self.m * self.n
            if band is None
            else (self.m + self.n) * (min(band, max(self.m, self.n)) + 1)
        )
        self.fast = fast if fast is not None else cells > FAST_CELL_THRESHOLD
        # Machine-local numbering: fleet execution interleaves many
        # machines, each of which must see the solo-run name sequence.
        self.uid = machine.name_uid("dp")
        self.qz_mode: str | None = None
        if use_quetzal:
            if machine.quetzal is None:
                raise AlignmentError("QUETZAL style requires an attached unit")
            # 'chars' stages the 2-bit-encoded sequences (the default;
            # Fig. 7 steps 3-4).  The scratchpad-resident rolling-state
            # backend ('state') is kept for the ablation benches: on this
            # model it is issue-bound and does not pay off (EXPERIMENTS.md).
            self.qz_mode = "chars"

    # ------------------------------------------------------------------
    def _stage(self) -> None:
        m = self.machine
        self.pbuf = m.new_buffer(f"dp_p{self.uid}", self.pair.pattern.codes, 1)
        t_rev = self.pair.text.codes[::-1].copy()
        self.trbuf = m.new_buffer(f"dp_tr{self.uid}", t_rev, 1)
        tb_cells = (
            (self.m + 1) * (self.n + 1)
            if self.band >= self.m + self.n
            else (self.m + self.n) * (self.band + 2)
        )
        self._tb_base = m.mem.alloc(max(64, tb_cells))
        self._tb_written = 0
        if self.qz_mode == "state":
            self.state = _DpStateQz(m, self.band, self.uid)
        else:
            self.state = _DpStateMem(m, self.m, self.uid)
        if self.qz_mode == "chars":
            from repro.genomics.sequence import Sequence

            qz = m.quetzal
            qz.clear()
            text_rev = Sequence(str(self.pair.text)[::-1], self.pair.text.alphabet)
            qz.load_sequence(0, self.pair.pattern)
            qz.load_sequence(1, text_rev)
            esize = (
                QZ_ESIZE_2BIT
                if self.pair.pattern.alphabet.encoded_bits == 2
                else QZ_ESIZE_8BIT
            )
            qz.qzconf(self.m, self.n, esize)

    # ------------------------------------------------------------------
    def _chunk_kernel(self, d: int, i0: int, count: int) -> None:
        """Instruction-level kernel for one 16-cell chunk of diagonal d."""
        self._chunk_body(self.machine, d, i0, count)
        self._tb_account(count)

    def _tb_account(self, count: int) -> None:
        if self.traceback_table:
            self.machine.mem.access(
                self._tb_base + self._tb_written, count, stream_id=909
            )
            self._tb_written += count

    def _chunk_body(self, m, d, i0, count) -> None:
        """The chunk's straight-line vector ops (replay-capturable:
        ``m`` may be a :class:`repro.vector.program.Recorder` and
        ``d``/``i0``/``count`` symbolic scalars)."""
        st = self.state
        pen = self.pen
        act = m.whilelt(0, count)
        if self.qz_mode == "chars":
            # Character streams from the QBUFFERs (2-bit encoded).
            qz = m.quetzal
            pv = qz.qzload(m.iota(32, start=i0 - 1), 0, pred=act)
            tv = qz.qzload(m.iota(32, start=self.n - d + i0), 1, pred=act)
        else:
            pv = m.load(self.pbuf, i0 - 1, 32, pred=act)
            tv = m.load(self.trbuf, self.n - d + i0, 32, pred=act)
        hm2v = st.read(m, "h", 2, i0 - 1, act)
        em1 = st.read(m, "e", 1, i0 - 1, act)
        hm1a = st.read(m, "h", 1, i0 - 1, act)
        hm1b = st.read(m, "h", 1, i0, act)
        fm1 = st.read(m, "f", 1, i0, act)
        eq = m.cmp("eq", pv, tv, pred=act)
        sub = m.sel(eq, m.dup(pen.match, 32), m.dup(pen.mismatch, 32))
        e_d = m.add(
            m.min(em1, m.add(hm1a, pen.gap_open, pred=act), pred=act),
            pen.gap_extend,
            pred=act,
        )
        f_d = m.add(
            m.min(fm1, m.add(hm1b, pen.gap_open, pred=act), pred=act),
            pen.gap_extend,
            pred=act,
        )
        h_d = m.min(m.min(m.add(hm2v, sub, pred=act), e_d, pred=act), f_d, pred=act)
        st.write(m, "e", i0, e_d, act)
        st.write(m, "f", i0, f_d, act)
        st.write(m, "h", i0, h_d, act)

    def _chunk_replay(self, d: int, i0: int, count: int, programs: dict) -> None:
        """Capture-or-replay one chunk kernel.

        The rolling state buffers rotate with period 6 (H x3, E/F x2),
        so the chunk body re-binds the same buffer objects whenever
        ``d`` repeats mod 6: one captured program per phase covers every
        diagonal, with (d, i0, count) threaded through as symbolic
        scalar parameters.
        """
        phase = d % 6
        REPLAY_METER.total_blocks += 1
        if phase in programs:
            prog = programs[phase]
            if prog is None:
                self._chunk_body(self.machine, d, i0, count)
                REPLAY_METER.interpreted_blocks += 1
            else:
                out = prog.replay(self.machine, (), (d, i0, count))
                if out is None:
                    # Program declined (an external register was still
                    # in flight at block entry): interpret this chunk.
                    self._chunk_body(self.machine, d, i0, count)
                    REPLAY_METER.interpreted_blocks += 1
                    REPLAY_METER.interpreted_instructions += prog.n_ops
        else:
            _outs, prog = capture(
                self.machine,
                lambda rm, dd, ii, cc: (self._chunk_body(rm, dd, ii, cc), ())[1],
                (), (d, i0, count),
            )
            programs[phase] = prog
        self._tb_account(count)

    # ------------------------------------------------------------------
    def _set_boundaries(self, d: int) -> None:
        """Host-write the j=0 / i=0 boundary cells of diagonal ``d``."""
        st = self.state
        pen = self.pen
        wrote = 0
        if d <= self.m:  # cell (i=d, j=0)
            val = pen.gap_open + pen.gap_extend * d if d else 0
            st.poke("h", 0, d, val)
            st.poke("e", 0, d, val)
            st.poke("f", 0, d, _INF)
            wrote += 1
        if d <= self.n:  # cell (i=0, j=d)
            val = pen.gap_open + pen.gap_extend * d if d else 0
            st.poke("h", 0, 0, val)
            st.poke("f", 0, 0, val)
            st.poke("e", 0, 0, _INF)
            wrote += 1
        if wrote:
            self.machine.scalar(2 * wrote)

    def _poison_band_edges(self, ilo: int, ihi: int) -> None:
        """Reset cells just outside the band window (buffers are reused)."""
        st = self.state
        for kind in ("h", "e", "f"):
            if ilo - 1 > 0:
                st.poke(kind, 0, ilo - 1, _INF)
            if ihi + 1 <= self.m:
                st.poke(kind, 0, ihi + 1, _INF)

    # ------------------------------------------------------------------
    def run(self) -> int | None:
        from repro.vector.fleet import drive_serial

        return drive_serial(self.run_gen())

    def run_gen(self):
        """Generator form of :meth:`run` yielding fleet step requests."""
        m = self.machine
        self._stage()
        if self.band < self.m + self.n and abs(self.n - self.m) > self.band:
            m.scalar(2)
            return None
        if self.fast:
            return self._run_fast()
        return (yield from self._run_exact_gen())

    def _score(self) -> int | None:
        if self.band < self.m + self.n:
            return banded_global_affine(
                self.pair.pattern, self.pair.text, self.band, self.pen
            )
        return nw_gotoh_global(self.pair.pattern, self.pair.text, self.pen)

    def _run_exact(self) -> int | None:
        from repro.vector.fleet import drive_serial

        return drive_serial(self._run_exact_gen())

    def _run_exact_gen(self):
        from repro.vector.fleet import program_step

        m = self.machine
        st = self.state
        # The QBUFFER-resident state backend ring-addresses with a
        # modulo, which the symbolic capture cannot express; it falls
        # back to interpretation (and is an ablation-only mode anyway).
        use_replay = ReplaySession.enabled(m) and self.qz_mode != "state"
        programs: dict = {}
        self._set_boundaries(0)
        for d in range(1, self.m + self.n + 1):
            st.rotate()
            self._set_boundaries(d)
            ilo, ihi = _diag_range(d, self.m, self.n, self.band)
            m.scalar(3)
            for i0 in range(ilo, ihi + 1, 16):
                count = min(16, ihi - i0 + 1)
                if not use_replay:
                    self._chunk_kernel(d, i0, count)
                    continue
                prog = programs.get(d % 6)
                if prog is None:
                    # First sighting of this phase (capture) or a broken
                    # capture: stay serial for this chunk.
                    self._chunk_replay(d, i0, count, programs)
                else:
                    # Fleet-fusable: the captured phase program can run
                    # across pairs in one batch.  The fused path replays
                    # the block itself; only the traceback-table write
                    # remains to account per pair (``accept``).
                    yield program_step(
                        m,
                        prog,
                        (d, i0, count),
                        run=lambda d=d, i0=i0, count=count: self._chunk_replay(
                            d, i0, count, programs
                        ),
                        accept=lambda outs, count=count: self._tb_account(count),
                    )
            self._poison_band_edges(ilo, ihi)
        final = st.peek("h", 0, self.m)
        if final >= _INF:
            return None
        expected = self._score()
        if expected is not None and final != expected:
            raise AlignmentError(
                f"anti-diagonal DP diverged from reference: {final} != {expected}"
            )
        return final

    # ------------------------------------------------------------------
    def _measured_chunk_cost(self) -> MachineStats:
        key = (
            "dp-chunk",
            self.qz_mode,
            self.machine.system.vlen_bits,
            self.machine.system.lat_vector_arith,
            self.machine.system.lat_predicate,
            self.machine.system.store_to_load_visible,
            self.traceback_table,
            self.machine.quetzal.config.name if self.use_quetzal else "",
        )
        cached = CALIBRATION.get(key)
        if cached is not None:
            return cached
        from repro.genomics.generator import ReadPairGenerator

        scratch = VectorMachine(self.machine.system)
        if self.use_quetzal:
            from repro.quetzal.accelerator import QuetzalUnit

            QuetzalUnit(scratch, self.machine.quetzal.config)
        pair = ReadPairGenerator(600, seed=7).pair()
        band = 200 if self.qz_mode == "state" else None
        engine = DpEngine(
            scratch, pair, band=band, penalties=self.pen,
            use_quetzal=self.use_quetzal, fast=False,
            traceback_table=self.traceback_table,
        )
        engine._stage()
        d = 400
        for warm_d in (d - 2, d - 1):
            ilo, ihi = _diag_range(warm_d, engine.m, engine.n, engine.band)
            for i0 in range(ilo, min(ihi, ilo + 160) + 1, 16):
                engine._chunk_kernel(warm_d, i0, 16)
            engine.state.rotate()
        ilo, ihi = _diag_range(d, engine.m, engine.n, engine.band)
        before = scratch.snapshot()
        engine._chunk_kernel(d, ilo + 16, 16)
        cost = scratch.snapshot().delta(before)
        CALIBRATION.put(key, cost)
        return cost

    def _run_fast(self) -> int | None:
        m = self.machine
        cost = self._measured_chunk_cost()
        widths = np.empty(self.m + self.n, dtype=np.int64)
        total_chunks = 0
        for d in range(1, self.m + self.n + 1):
            ilo, ihi = _diag_range(d, self.m, self.n, self.band)
            width = max(0, ihi - ilo + 1)
            widths[d - 1] = width
            total_chunks += -(-width // 16)
        m.account_stats(cost, times=total_chunks)
        if self.qz_mode == "state":
            m.quetzal.qbuf[0].reads += total_chunks * 3
            m.quetzal.qbuf[1].reads += total_chunks * 2
            m.quetzal.qbuf[0].writes += total_chunks
            m.quetzal.qbuf[1].writes += total_chunks * 2
        elif self.qz_mode == "chars":
            m.quetzal.qbuf[0].reads += total_chunks
            m.quetzal.qbuf[1].reads += total_chunks
        n_diags = self.m + self.n
        m.account_block("scalar", instructions=3 * n_diags, busy=3 * n_diags)
        total_cells = int(widths.sum())
        # Memory traffic: requests per chunk over the rolling arrays
        # (cache-resident when small, streaming when not) plus the
        # traceback table streamed to DRAM once.
        reqs_per_chunk = {"state": 3, "chars": 9, None: 11}[self.qz_mode]
        reqs = reqs_per_chunk * total_chunks
        line = m.system.l1d.line_bytes
        arrays_fit_l1 = (self.m + 3) * 4 * 7 < m.system.l1d.size_bytes // 2
        rolling_in_mem = self.qz_mode != "state"
        array_lines = (
            0
            if (arrays_fit_l1 or not rolling_in_mem)
            else (7 * 4 * total_cells) // line
        )
        tb_lines = total_cells // line if self.traceback_table else 0
        m.mem.account_streaming(
            reqs + tb_lines,
            array_lines + tb_lines,
            dram_fraction=(tb_lines / max(1, array_lines + tb_lines)),
        )
        # Prefetched streaming still exposes a small per-line latency.
        stall = array_lines // 2 + 2 * tb_lines
        if stall:
            m.account_block("memory", stall=stall, stall_category="memory")
        return self._score()


def default_band(pair: SequencePair, band_frac: float = 0.05) -> int:
    """A ksw2-like band: wide enough for the expected indel drift, capped
    so the rolling state fits the QBUFFERs (Section VI's tiling advice)."""
    length = len(pair.pattern)
    drift = abs(len(pair.text) - len(pair.pattern))
    return max(16, drift + 8, min(250, int(length * band_frac)))


class KswVec(Implementation):
    """ksw2-style banded global affine alignment (the paper's SW baseline)."""

    algorithm = "sw"
    style = "vec"

    def __init__(
        self,
        band: int | None = None,
        band_frac: float = 0.05,
        penalties: Penalties | None = None,
        fast: bool | None = None,
    ) -> None:
        self.band = band
        self.band_frac = band_frac
        self.pen = penalties or Penalties()
        self.fast = fast

    def _band_for(self, pair: SequencePair) -> int:
        if self.band is not None:
            return self.band
        return default_band(pair, self.band_frac)

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        before = machine.snapshot()
        if len(pair.pattern) == 0 or len(pair.text) == 0:
            machine.scalar(4)
            return self._wrap(machine, before, None)
        engine = DpEngine(
            machine, pair, band=self._band_for(pair), penalties=self.pen,
            use_quetzal=self.style in ("qz", "qzc"), fast=self.fast,
        )
        score = yield from engine.run_gen()
        return self._wrap(machine, before, score)


class ParasailNwVec(Implementation):
    """parasail-style full-table global affine NW."""

    algorithm = "nw"
    style = "vec"

    def __init__(
        self, penalties: Penalties | None = None, fast: bool | None = None
    ) -> None:
        self.pen = penalties or Penalties()
        self.fast = fast

    def run_pair_gen(self, machine: VectorMachine, pair: SequencePair):
        before = machine.snapshot()
        if len(pair.pattern) == 0 or len(pair.text) == 0:
            machine.scalar(4)
            return self._wrap(machine, before, None)
        engine = DpEngine(
            machine, pair, band=None, penalties=self.pen,
            use_quetzal=self.style in ("qz", "qzc"), fast=self.fast,
        )
        score = yield from engine.run_gen()
        return self._wrap(machine, before, score)
