"""QUETZAL reproduction: vector acceleration framework for genome sequence analysis.

This package is a functional + cycle-level Python reproduction of
*QUETZAL: Vector Acceleration Framework for Modern Genome Sequence Analysis
Algorithms* (Pavon et al., ISCA 2024).

Layout
------
``repro.genomics``   sequences, alphabets, encodings, datasets
``repro.memory``     cache hierarchy / DRAM timing model
``repro.vector``     SVE-like vector machine with a scoreboard cycle model
``repro.quetzal``    the QUETZAL accelerator (QBUFFERs, encoder, count ALU)
``repro.align``      alignment / filtering algorithms (scalar, VEC, QUETZAL)
``repro.kernels``    non-genomics kernels (histogram, SpMV)
``repro.gpu``        analytic GPU throughput model
``repro.eval``       experiment runner + per-figure/table experiments
"""

from repro._version import __version__
from repro.config import SystemConfig, QuetzalConfig

__all__ = ["__version__", "SystemConfig", "QuetzalConfig"]
