"""Persistent calibration cache for measured cost tables.

The simulator calibrates itself by *measuring* steady-state loop-body
costs on scratch machines (``LoopCostModel`` in
:mod:`repro.align.vectorized.extend_loop`, the DP chunk cost in
:mod:`repro.align.dp_machine`).  Those measurements are deterministic
functions of the system/accelerator configuration, so they can be reused
across processes and across CLI invocations.  This module provides the
shared store:

* an always-on in-process memory layer (the behaviour the code had when
  each call site kept its own module dict), and
* an opt-in on-disk layer under ``.repro_cache/`` (one pickle per key,
  named by a SHA-256 of the key plus the repro version) so worker
  processes and repeated runs skip re-measurement.

Keys must be tuples of picklable primitives with a stable ``repr``;
values are :class:`repro.vector.stats.MachineStats`-shaped objects.  The
disk layer is safe under concurrent writers: files are written to a
temporary name and atomically renamed, and a payload is only trusted if
its recorded version and key match exactly.

Environment knobs (read by :func:`configure_from_env`, which the CLI and
pool workers call): ``REPRO_CACHE_DIR`` overrides the directory and
``REPRO_NO_CACHE=1`` disables the disk layer.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro._version import __version__

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_OFF = "REPRO_NO_CACHE"


@dataclass
class CacheCounters:
    """Hit/miss accounting for the calibration cache (timing reports)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    def copy(self) -> "CacheCounters":
        """An independent snapshot of the current counters."""
        return CacheCounters(
            self.memory_hits, self.disk_hits, self.misses, self.stores
        )

    def delta(self, earlier: "CacheCounters") -> "CacheCounters":
        """Counter increments since an ``earlier`` snapshot."""
        return CacheCounters(
            memory_hits=self.memory_hits - earlier.memory_hits,
            disk_hits=self.disk_hits - earlier.disk_hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
        )


class CalibrationCache:
    """Two-layer (memory + optional disk) store for measured cost tables."""

    def __init__(self) -> None:
        self._memory: dict = {}
        # key -> (file path, repr(key)); the digest and repr of a key
        # are pure, so warm lookups never recompute them.  Kept across
        # clear_memory() on purpose: simulated cold starts drop values,
        # not key identities.
        self._routes: dict = {}
        self.directory: Path | None = None
        self.counters = CacheCounters()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable_disk(self, directory: "str | os.PathLike | None" = None) -> Path:
        """Turn on the on-disk layer (created on first store)."""
        self.directory = Path(directory or os.environ.get(_ENV_DIR) or DEFAULT_CACHE_DIR)
        return self.directory

    def disable_disk(self) -> None:
        """Keep only the in-process memory layer."""
        self.directory = None

    @property
    def disk_enabled(self) -> bool:
        """Whether lookups and stores also consult the on-disk layer."""
        return self.directory is not None

    def clear_memory(self) -> None:
        """Drop the in-process layer (used by tests to simulate cold starts)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def _route(self, key) -> "tuple[Path, str]":
        """(file path, repr) for ``key``, memoized per key.

        The digest and the repr are pure functions of the key and the
        repro version, but computing them (repr of a nested config
        tuple, SHA-256, a pathlib join) dominated the warm read path —
        see the warm-vs-cold regression test in
        ``tests/eval/test_calibration_cache.py``.
        """
        route = self._routes.get(key)
        if route is not None and route[2] is self.directory:
            return route[0], route[1]
        key_repr = repr(key)
        digest = hashlib.sha256(
            f"{__version__}|{key_repr}".encode("utf-8")
        ).hexdigest()[:32]
        assert self.directory is not None
        path = self.directory / f"calib-{digest}.pkl"
        self._routes[key] = (path, key_repr, self.directory)
        return path, key_repr

    def _path(self, key) -> Path:
        return self._route(key)[0]

    def get(self, key):
        """Cached value for ``key``, or ``None`` on a full miss.

        Memory is consulted first (same-object semantics within a
        process); a disk hit is promoted into memory so later lookups
        return the identical object.
        """
        if key in self._memory:
            self.counters.memory_hits += 1
            return self._memory[key]
        if self.directory is not None:
            value = self._read_disk(key)
            if value is not None:
                self.counters.disk_hits += 1
                self._memory[key] = value
                return value
        self.counters.misses += 1
        return None

    def put(self, key, value) -> None:
        """Store a measured value in memory and (if enabled) on disk."""
        self._memory[key] = value
        self.counters.stores += 1
        if self.directory is not None:
            self._write_disk(key, value)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _read_disk(self, key):
        path, key_repr = self._route(key)
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        # Trust nothing implicit: the version and the full key must match
        # (the filename hash is only a routing shortcut).
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != __version__ or payload.get("key") != key_repr:
            return None
        return payload.get("value")

    def _write_disk(self, key, value) -> None:
        assert self.directory is not None
        try:
            path, key_repr = self._route(key)
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"version": __version__, "key": key_repr, "value": value}
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".calib-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or vanished cache directory degrades to
            # memory-only behaviour; it never fails the run.
            pass


#: The process-wide calibration cache all cost models share.
CALIBRATION = CalibrationCache()


def cache_root() -> Path:
    """The cache directory currently in effect.

    Resolves even when the calibration disk layer is disabled — other
    persistent state (the run journals of :mod:`repro.eval.supervise`)
    lives under the same root regardless.
    """
    if CALIBRATION.directory is not None:
        return CALIBRATION.directory
    return Path(os.environ.get(_ENV_DIR) or DEFAULT_CACHE_DIR)


def configure_from_env(default_disk: bool = False) -> None:
    """Apply ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` to the shared cache.

    ``default_disk=True`` (the CLI and pool workers) enables the disk
    layer unless explicitly disabled; library imports stay memory-only
    unless ``REPRO_CACHE_DIR`` is set.
    """
    if os.environ.get(_ENV_OFF, "") not in ("", "0", "false"):
        CALIBRATION.disable_disk()
        return
    if default_disk or os.environ.get(_ENV_DIR):
        CALIBRATION.enable_disk()
