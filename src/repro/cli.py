"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig13a [--scale 0.2] [--jobs 8]
    python -m repro all --scale 0.1 --jobs 8 --verbose

``--jobs N`` fans experiment cells out across N worker processes
(default: the ``REPRO_JOBS`` environment variable, else fully serial);
tables are bit-identical at every jobs value.  Calibration measurements
persist under ``.repro_cache/`` between runs unless ``--no-cache`` (or
``REPRO_NO_CACHE=1``) is given.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.cache import CALIBRATION, configure_from_env
from repro.errors import ReproError
from repro.eval import experiments as ex
from repro.eval import timing
from repro.eval.parallel import default_jobs
from repro.eval.reporting import render_table

#: Experiment id -> (callable, title, kwargs-name for scaling or None).
EXPERIMENTS = {
    "tab1": (ex.table1_system, "Table I: simulated system", None),
    "tab2": (ex.table2_datasets, "Table II: datasets", None),
    "fig3": (ex.fig3_vectorization, "Fig. 3: VEC speedup over baseline", "pairs_scale"),
    "fig4": (ex.fig4_breakdown, "Fig. 4: VEC execution-time breakdown", "pairs_scale"),
    "fig12": (ex.fig12_ports, "Fig. 12: read-port design space", "pairs_scale"),
    "tab3": (ex.table3_area, "Table III: area / power", None),
    "fig13a": (ex.fig13a_single_core, "Fig. 13a: single-core speedups", "pairs_scale"),
    "fig13b": (ex.fig13b_multicore, "Fig. 13b: multicore scaling", "pairs_scale"),
    "fig14a": (ex.fig14a_memory_requests, "Fig. 14a: memory-request reduction", "pairs_scale"),
    "fig14b": (ex.fig14b_pipeline, "Fig. 14b: SS+WFA pipeline", "pairs_scale"),
    "fig15a": (ex.fig15a_gpu, "Fig. 15a: CPU vs GPU throughput", "pairs_scale"),
    "fig15b": (ex.fig15b_other_domains, "Fig. 15b: other domains", "scale"),
    "tab4": (ex.table4_gcups, "Table IV: PGCUPS per area", "pairs_scale"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="QUETZAL reproduction: regenerate paper tables/figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset pair-count scale (default 1.0; use 0.1-0.3 for quick runs)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for experiment cells "
        "(default: $REPRO_JOBS, else 1 = serial; results are identical)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist calibration measurements under .repro_cache/",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="append per-experiment wall-time and cache-hit counters",
    )
    return parser


def run_experiment(
    name: str, scale: float, jobs: int = 1, verbose: bool = False
) -> str:
    """Run one experiment and render its table (plus timing footer)."""
    fn, title, scale_kw = EXPERIMENTS[name]
    kwargs = {scale_kw: scale} if scale_kw else {}
    if "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = jobs
    start = time.time()
    with timing.measure(name, jobs=jobs) as record:
        rows = fn(**kwargs)
    elapsed = time.time() - start
    out = render_table(rows, title) + f"\n[{name}: {elapsed:.1f}s]"
    if verbose:
        out += f"\n[{record.summary()}]"
    return out


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (_, title, _) in EXPERIMENTS.items():
            print(f"{name:<8} {title}")
        return 0
    try:
        jobs = args.jobs if args.jobs is not None else default_jobs()
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if jobs < 1:
        print(f"--jobs must be positive: {jobs}", file=sys.stderr)
        return 2
    configure_from_env(default_disk=not args.no_cache)
    if args.no_cache:
        CALIBRATION.disable_disk()
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(run_experiment(name, args.scale, jobs=jobs, verbose=args.verbose))
            print()
        if args.verbose:
            print(timing.render_report())
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    print(run_experiment(args.experiment, args.scale, jobs=jobs, verbose=args.verbose))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
