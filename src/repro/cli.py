"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig13a [--scale 0.2] [--jobs 8]
    python -m repro all --scale 0.1 --jobs 8 --verbose
    python -m repro fig4 --emit-json results/fig4.json --emit-csv results/fig4.csv
    python -m repro compare results/baselines/fig4.json results/fig4.json
    python -m repro bench --quick --check
    python -m repro serve --unix /tmp/repro.sock --max-batch 16
    python -m repro serve --smoke

``--jobs N`` fans experiment cells out across N worker processes
(default: the ``REPRO_JOBS`` environment variable, else fully serial);
tables are bit-identical at every jobs value.  Calibration measurements
persist under ``.repro_cache/`` between runs unless ``--no-cache`` (or
``REPRO_NO_CACHE=1``) is given.

``--emit-json``/``--emit-csv`` write schema-versioned result records
(rows + per-cell machine statistics: cycle breakdown, cache hit rates,
prefetch accuracy, DRAM traffic — see :mod:`repro.eval.records`); the
``compare`` subcommand diffs two such records with configurable
tolerances and exits non-zero on drift (:mod:`repro.eval.compare`).
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from pathlib import Path

from repro.cache import CALIBRATION, configure_from_env
from repro.errors import ReproError
from repro.eval import bench
from repro.eval import experiments as ex
from repro.eval import records, supervise, timing
from repro.eval.compare import Tolerances, compare_records, render_drifts
from repro.eval.parallel import default_jobs
from repro.eval.reporting import render_table
from repro.vector.backends import BACKEND_NAMES
from repro.vector.machine import VectorMachine


def _disable_replay() -> None:
    """Turn the recorded-program replay engine off for this process.

    The environment variable makes the choice stick for worker
    processes (``repro.vector.machine`` reads it at import time), the
    class attribute covers machines built in this process.
    """
    os.environ["REPRO_NO_REPLAY"] = "1"
    VectorMachine.use_replay = False


def _disable_memvec() -> None:
    """Turn the vectorized memory-model engine off for this process.

    The hierarchy falls back to the serial per-request walk for every
    batch (no phase splitting, no pattern replay, no fleet coalescing).
    Same env-var + class-attribute pattern as :func:`_disable_replay`;
    results are bit-identical either way.
    """
    from repro.memory.hierarchy import MemoryHierarchy

    os.environ["REPRO_NO_MEMVEC"] = "1"
    MemoryHierarchy.use_vectorized_memory = False


def _disable_trace_trees() -> None:
    """Turn the trace-tree tier of the replay JIT off for this process.

    Replay still runs, but captures stay generic straight-line programs:
    no regime specialisation, no side-exit children, no loop-in-kernel
    execution.  Same env-var + class-attribute pattern as
    :func:`_disable_replay`.
    """
    os.environ["REPRO_NO_TRACE_TREES"] = "1"
    VectorMachine.use_trace_trees = False


def _set_fleet(width: "int | None") -> None:
    """Pin the fleet width for this process and its workers.

    Like :func:`_disable_replay`: the environment variable reaches
    worker processes (read at ``repro.vector.machine`` import), the
    class attribute covers machines built here.
    """
    if width is None:
        return
    if width < 0:
        raise ReproError(f"--fleet must be >= 0: {width}")
    os.environ["REPRO_FLEET"] = str(width)
    VectorMachine.use_fleet = width


def _set_jit_backend(name: "str | None") -> None:
    """Pin the replay-JIT codegen backend for this process and workers.

    Same env-var + class-attribute pattern as :func:`_set_fleet`; the
    default (``numpy-opt``) applies when the flag is absent.
    """
    if name is None:
        return
    os.environ["REPRO_JIT_BACKEND"] = name
    VectorMachine.jit_backend = name


def add_jit_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jit-backend",
        choices=BACKEND_NAMES,
        default=None,
        help="codegen backend for replay kernels (default: "
        "$REPRO_JIT_BACKEND, else numpy-opt; 'numba' falls back to "
        "numpy-opt with a warning when numba is not installed; results "
        "are bit-identical across backends)",
    )

#: Experiment id -> (callable, title, kwargs-name for scaling or None).
EXPERIMENTS = {
    "tab1": (ex.table1_system, "Table I: simulated system", None),
    "tab2": (ex.table2_datasets, "Table II: datasets", None),
    "fig3": (ex.fig3_vectorization, "Fig. 3: VEC speedup over baseline", "pairs_scale"),
    "fig4": (ex.fig4_breakdown, "Fig. 4: VEC execution-time breakdown", "pairs_scale"),
    "fig12": (ex.fig12_ports, "Fig. 12: read-port design space", "pairs_scale"),
    "tab3": (ex.table3_area, "Table III: area / power", None),
    "fig13a": (ex.fig13a_single_core, "Fig. 13a: single-core speedups", "pairs_scale"),
    "fig13b": (ex.fig13b_multicore, "Fig. 13b: multicore scaling", "pairs_scale"),
    "fig14a": (ex.fig14a_memory_requests, "Fig. 14a: memory-request reduction", "pairs_scale"),
    "fig14b": (ex.fig14b_pipeline, "Fig. 14b: SS+WFA pipeline", "pairs_scale"),
    "fig15a": (ex.fig15a_gpu, "Fig. 15a: CPU vs GPU throughput", "pairs_scale"),
    "fig15b": (ex.fig15b_other_domains, "Fig. 15b: other domains", "scale"),
    "tab4": (ex.table4_gcups, "Table IV: PGCUPS per area", "pairs_scale"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="QUETZAL reproduction: regenerate paper tables/figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset pair-count scale (default 1.0; use 0.1-0.3 for quick runs)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for experiment cells "
        "(default: $REPRO_JOBS, else 1 = serial; results are identical)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist calibration measurements under .repro_cache/",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="append per-experiment wall-time and cache-hit counters",
    )
    parser.add_argument(
        "--emit-json",
        metavar="PATH",
        default=None,
        help="write a schema-versioned result record (rows + machine "
        "stats); with 'all', PATH is a directory of <experiment>.json",
    )
    parser.add_argument(
        "--emit-csv",
        metavar="PATH",
        default=None,
        help="write the table rows as CSV; with 'all', PATH is a "
        "directory of <experiment>.csv",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="interpret every vector op instead of replaying recorded "
        "programs (results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-trace-trees",
        action="store_true",
        help="disable the trace-tree tier of the replay JIT (side-exit "
        "children, loop-in-kernel); replay still runs straight-line "
        "programs, and results are bit-identical either way",
    )
    parser.add_argument(
        "--no-memvec",
        action="store_true",
        help="disable the vectorized memory-model engine (phase-split "
        "batch retirement and pattern-replay memoization in the cache "
        "hierarchy); every batch takes the serial per-request walk, and "
        "results are bit-identical either way",
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="advance N read-pairs in lockstep through the fleet "
        "executor, fusing identical replay blocks across pairs "
        "(default: $REPRO_FLEET, else off; per-pair results are "
        "bit-identical at every width)",
    )
    add_jit_backend_argument(parser)
    add_supervise_arguments(parser)
    return parser


def add_supervise_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by experiment runs and ``run``."""
    group = parser.add_argument_group("supervision (fault tolerance)")
    group.add_argument(
        "--supervise",
        action="store_true",
        help="run units under the fault-tolerant supervisor: journal "
        "completed units under .repro_cache/runs/<run-id>/, retry "
        "crashed/hung workers, degrade to serial if the pool keeps dying",
    )
    group.add_argument(
        "--run-id",
        metavar="ID",
        default=None,
        help="name this run's checkpoint directory (implies --supervise; "
        "default: a generated timestamp id)",
    )
    group.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="resume an interrupted run: restore completed units from "
        "its journal and compute only the rest (implies --supervise)",
    )
    group.add_argument(
        "--fault-plan",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection, e.g. '2:kill@0,5:hang' "
        "(ORDINAL:ACTION[@ATTEMPT]; actions: kill, hang, raise; "
        "default: $REPRO_FAULT_PLAN; implies --supervise)",
    )
    group.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-unit worker timeout under supervision (default 300)",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per unit under supervision (default 2)",
    )


def supervise_config_from_args(args) -> "supervise.SuperviseConfig | None":
    """Build the supervisor policy, or None when supervision is off.

    Supervision activates when any supervision flag is given or
    ``REPRO_SUPERVISE=1`` is set; a fault plan on the command line or in
    ``REPRO_FAULT_PLAN`` activates it too (there is nothing to inject
    faults into otherwise).
    """
    fault_spec = args.fault_plan or os.environ.get(supervise.FAULT_PLAN_ENV)
    wanted = (
        args.supervise
        or args.run_id is not None
        or args.resume is not None
        or fault_spec is not None
        or os.environ.get("REPRO_SUPERVISE", "") not in ("", "0", "false")
    )
    if not wanted:
        return None
    if args.resume is not None and args.run_id is not None:
        raise ReproError("--resume and --run-id are mutually exclusive")
    run_id = args.resume or args.run_id or supervise.generate_run_id()
    return supervise.SuperviseConfig(
        run_id=run_id,
        resume=args.resume is not None,
        timeout=args.timeout,
        retries=args.retries,
        fault_plan=supervise.FaultPlan.parse(fault_spec),
    )


def build_compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro compare",
        description="Diff two emitted result records; exit 1 on drift.",
    )
    parser.add_argument("baseline", help="baseline result JSON")
    parser.add_argument("current", help="result JSON to check against it")
    parser.add_argument(
        "--tol-cycles",
        type=float,
        default=Tolerances.cycles,
        help="relative cycle / row-value drift tolerance "
        f"(default {Tolerances.cycles})",
    )
    parser.add_argument(
        "--tol-instructions",
        type=float,
        default=Tolerances.instructions,
        help="relative instruction / request count drift tolerance "
        f"(default {Tolerances.instructions})",
    )
    parser.add_argument(
        "--tol-hit-rate",
        type=float,
        default=Tolerances.hit_rate,
        help="absolute hit-rate / prefetch-accuracy drift tolerance "
        f"(default {Tolerances.hit_rate})",
    )
    parser.add_argument(
        "--tol-dram",
        type=float,
        default=Tolerances.dram,
        help=f"relative DRAM-traffic drift tolerance (default {Tolerances.dram})",
    )
    parser.add_argument(
        "--no-rows",
        action="store_true",
        help="compare only machine statistics, not the rendered rows",
    )
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the batched memory fast path against the "
        "legacy serial walk (bit-identical statistics enforced).",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink repetition counts (CI smoke setting)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=bench.DEFAULT_OUT,
        help=f"report destination (default {bench.DEFAULT_OUT})",
    )
    parser.add_argument(
        "--only",
        metavar="WORKLOAD",
        action="append",
        default=None,
        help="run a subset (repeatable); choose from "
        "stride_sweep, random_gather, wfa_extend, fig4_cell, "
        "replay_extend, replay_ss, fleet_extend, fleet_fig4, trace_tree, "
        "memvec_gather, serve (service-level load points; "
        "not in the default set — see results/BENCH_serve.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if statistics diverge or a gated workload "
        "(stride_sweep, the replay/trace-tree workloads, fleet_extend) "
        "regressed",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="also gate speedups against a committed report "
        "(results/BENCH_*.json): exit 1 on a shared workload more than "
        "--tolerance below its committed speedup",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed relative speedup regression for --baseline "
        "(default 0.10)",
    )
    parser.add_argument(
        "--profile",
        metavar="N",
        type=int,
        default=None,
        help="instead of timing, run each workload once under cProfile "
        "and print the top N functions by cumulative time",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="disable the replay engine for the default execution paths "
        "(the replay_* workloads still toggle it per leg)",
    )
    parser.add_argument(
        "--no-trace-trees",
        action="store_true",
        help="disable the trace-tree JIT tier for the default execution "
        "paths (the trace_tree workload still toggles it per leg)",
    )
    parser.add_argument(
        "--no-memvec",
        action="store_true",
        help="disable the vectorized memory-model engine for the default "
        "execution paths (the memvec workloads still toggle it per leg)",
    )
    parser.add_argument(
        "--dimension",
        metavar="DIM",
        choices=sorted(bench._LEGS),
        default=None,
        help="override the toggled dimension for every selected workload "
        "(e.g. --dimension backend reruns replay workloads as "
        "generated-numpy vs the process-default backend)",
    )
    add_jit_backend_argument(parser)
    return parser


def bench_main(argv: "list[str]") -> int:
    """``python -m repro bench [--quick] [--only W] [--check] [--out P]``."""
    args = build_bench_parser().parse_args(argv)
    if args.no_replay:
        _disable_replay()
    if args.no_trace_trees:
        _disable_trace_trees()
    if args.no_memvec:
        _disable_memvec()
    _set_jit_backend(args.jit_backend)
    if args.profile is not None:
        print(bench.profile_bench(top=args.profile, quick=args.quick, only=args.only))
        return 0
    report = bench.run_bench(
        quick=args.quick, out=args.out, only=args.only,
        dimension=args.dimension,
    )
    print(bench.render_report(report))
    failures = []
    if args.check:
        failures.extend(bench.check_report(report))
    if args.baseline is not None:
        import json

        baseline = json.loads(Path(args.baseline).read_text())
        failures.extend(
            bench.check_regression(report, baseline, tolerance=args.tolerance)
        )
    for failure in failures:
        print(f"BENCH FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def compare_main(argv: "list[str]") -> int:
    """``python -m repro compare BASELINE CURRENT [--tol-*]``."""
    args = build_compare_parser().parse_args(argv)
    tolerances = Tolerances(
        cycles=args.tol_cycles,
        instructions=args.tol_instructions,
        requests=args.tol_instructions,
        dram=args.tol_dram,
        hit_rate=args.tol_hit_rate,
    )
    baseline = records.read_json(args.baseline)
    current = records.read_json(args.current)
    drifts = compare_records(
        baseline, current, tolerances, include_rows=not args.no_rows
    )
    print(render_drifts(drifts, args.baseline, args.current))
    return 1 if drifts else 0


def _emit_path(base: str, name: str, suffix: str, multi: bool) -> Path:
    """Resolve an emit target: a file for one experiment, a directory
    of ``<experiment><suffix>`` files for an ``all`` run."""
    if multi:
        return Path(base) / f"{name}{suffix}"
    return Path(base)


def run_experiment(
    name: str,
    scale: float,
    jobs: int = 1,
    verbose: bool = False,
    emit_json: "str | None" = None,
    emit_csv: "str | None" = None,
    multi: bool = False,
) -> str:
    """Run one experiment and render its table (plus timing footer).

    ``emit_json``/``emit_csv`` additionally write the machine-readable
    record (rows plus the per-cell machine statistics captured while the
    experiment ran); ``multi`` treats the emit paths as directories.
    """
    fn, title, scale_kw = EXPERIMENTS[name]
    kwargs = {scale_kw: scale} if scale_kw else {}
    if "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = jobs
    start = time.time()
    with timing.measure(name, jobs=jobs) as record:
        with records.capture() as captured:
            rows = fn(**kwargs)
    elapsed = time.time() - start
    out = render_table(rows, title) + f"\n[{name}: {elapsed:.1f}s]"
    if verbose:
        out += f"\n[{record.summary()}]"
    if emit_json is not None:
        result_record = records.experiment_record(
            name,
            title,
            rows,
            scale=scale,
            jobs=jobs,
            machines=captured.machine_records(),
        )
        path = records.write_json(
            result_record, _emit_path(emit_json, name, ".json", multi)
        )
        out += f"\n[wrote {path}]"
    if emit_csv is not None:
        path = records.write_csv(rows, _emit_path(emit_csv, name, ".csv", multi))
        out += f"\n[wrote {path}]"
    return out


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Resume an interrupted supervised run from its journal "
        "(the experiment, scale and emit targets are read from the run's "
        "recorded metadata).",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        required=True,
        help="run id to resume (a directory under .repro_cache/runs/)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="override the recorded worker count",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="override the recorded dataset scale (normally unwise: "
        "changed units will not match the journal and are recomputed)",
    )
    parser.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="override the recorded JSON emit target",
    )
    parser.add_argument(
        "--emit-csv", metavar="PATH", default=None,
        help="override the recorded CSV emit target",
    )
    parser.add_argument("--verbose", "-v", action="store_true")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--no-replay", action="store_true")
    parser.add_argument("--no-trace-trees", action="store_true")
    parser.add_argument(
        "--no-memvec",
        action="store_true",
        help="disable the vectorized memory-model engine (serial "
        "per-request cache walk; bit-identical results)",
    )
    parser.add_argument("--fleet", type=int, default=None, metavar="N")
    add_jit_backend_argument(parser)
    parser.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="inject faults into the resumed run too (testing only)",
    )
    parser.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS")
    parser.add_argument("--retries", type=int, default=2, metavar="N")
    return parser


def run_main(argv: "list[str]") -> int:
    """``python -m repro run --resume RUN_ID`` — finish an interrupted run."""
    args = build_run_parser().parse_args(argv)
    configure_from_env(default_disk=not args.no_cache)
    if args.no_cache:
        CALIBRATION.disable_disk()
    if args.no_replay:
        _disable_replay()
    if args.no_trace_trees:
        _disable_trace_trees()
    if args.no_memvec:
        _disable_memvec()
    _set_fleet(args.fleet)
    _set_jit_backend(args.jit_backend)
    meta = supervise.read_meta(args.resume)
    experiment = meta.get("experiment")
    if experiment != "all" and experiment not in EXPERIMENTS:
        raise ReproError(
            f"run {args.resume!r} records unknown experiment {experiment!r}"
        )
    fault_spec = args.fault_plan or os.environ.get(supervise.FAULT_PLAN_ENV)
    config = supervise.SuperviseConfig(
        run_id=args.resume,
        resume=True,
        timeout=args.timeout,
        retries=args.retries,
        fault_plan=supervise.FaultPlan.parse(fault_spec),
    )
    scale = args.scale if args.scale is not None else meta.get("scale", 1.0)
    jobs = args.jobs if args.jobs is not None else int(meta.get("jobs", 1))
    emit_json = args.emit_json if args.emit_json is not None else meta.get("emit_json")
    emit_csv = args.emit_csv if args.emit_csv is not None else meta.get("emit_csv")
    return _run_supervised(
        config,
        experiment,
        scale=scale,
        jobs=jobs,
        verbose=args.verbose,
        emit_json=emit_json,
        emit_csv=emit_csv,
    )


def _run_experiments(
    experiment: str,
    scale: float,
    jobs: int,
    verbose: bool,
    emit_json: "str | None",
    emit_csv: "str | None",
) -> None:
    """Run one experiment id (or 'all') and print the rendered tables."""
    if experiment == "all":
        for name in EXPERIMENTS:
            print(
                run_experiment(
                    name, scale, jobs=jobs, verbose=verbose,
                    emit_json=emit_json, emit_csv=emit_csv, multi=True,
                )
            )
            print()
        if verbose:
            print(timing.render_report())
        return
    print(
        run_experiment(
            experiment, scale, jobs=jobs, verbose=verbose,
            emit_json=emit_json, emit_csv=emit_csv,
        )
    )


def _run_supervised(
    config: "supervise.SuperviseConfig",
    experiment: str,
    scale: float,
    jobs: int,
    verbose: bool,
    emit_json: "str | None",
    emit_csv: "str | None",
) -> int:
    """Run experiments under a supervisor; one run id spans them all."""
    with supervise.activate(config) as supervisor:
        supervisor.write_meta(
            {
                "experiment": experiment,
                "scale": scale,
                "jobs": jobs,
                "emit_json": emit_json,
                "emit_csv": emit_csv,
            }
        )
        try:
            _run_experiments(experiment, scale, jobs, verbose, emit_json, emit_csv)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            print(
                f"[run {config.run_id}: completed units are journaled under "
                f"{supervisor.directory}]",
                file=sys.stderr,
            )
            return 3
    print(f"[{supervisor.report.summary()}]")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["compare"]:
        try:
            return compare_main(argv[1:])
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if argv[:1] == ["bench"]:
        try:
            return bench_main(argv[1:])
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if argv[:1] == ["run"]:
        try:
            return run_main(argv[1:])
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if argv[:1] == ["serve"]:
        from repro.serve.cli import serve_main

        try:
            return serve_main(argv[1:])
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (_, title, _) in EXPERIMENTS.items():
            print(f"{name:<8} {title}")
        return 0
    try:
        jobs = args.jobs if args.jobs is not None else default_jobs()
        supervise_cfg = supervise_config_from_args(args)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if jobs < 1:
        print(f"--jobs must be positive: {jobs}", file=sys.stderr)
        return 2
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    configure_from_env(default_disk=not args.no_cache)
    if args.no_cache:
        CALIBRATION.disable_disk()
    if args.no_replay:
        _disable_replay()
    if args.no_trace_trees:
        _disable_trace_trees()
    if args.no_memvec:
        _disable_memvec()
    _set_fleet(args.fleet)
    _set_jit_backend(args.jit_backend)
    if supervise_cfg is not None:
        return _run_supervised(
            supervise_cfg,
            args.experiment,
            scale=args.scale,
            jobs=jobs,
            verbose=args.verbose,
            emit_json=args.emit_json,
            emit_csv=args.emit_csv,
        )
    _run_experiments(
        args.experiment, args.scale, jobs, args.verbose,
        args.emit_json, args.emit_csv,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
