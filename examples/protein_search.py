#!/usr/bin/env python3
"""Use case 4: protein alignment with the 8-bit encoding.

Builds a synthetic protein family (a BAliBase-style multiple-sequence
group), aligns every within-family pair with WFA in VEC and QUETZAL+C
styles, and prints per-pair distances plus the aggregate speedup.  The
20-letter alphabet exercises the accelerator's 8-bit element mode
(Section IV-A): 8 symbols per 64-bit window instead of 32.

    python examples/protein_search.py
"""

from repro.align.quetzal_impl import WfaQzc
from repro.align.vectorized import WfaVec
from repro.align.needleman_wunsch import nw_edit_distance
from repro.eval.runner import run_implementation
from repro.genomics.generator import ProteinFamilyGenerator


def main() -> None:
    gen = ProteinFamilyGenerator(length=180, members=4, divergence=0.12, seed=5)
    pairs = gen.family_pairs(1)
    print(f"protein family: 4 members, {len(pairs)} within-family pairs, "
          "~12% divergence\n")

    vec = run_implementation(WfaVec(), pairs)
    qzc = run_implementation(WfaQzc(), pairs)

    print(f"{'pair':>4} {'edit distance':>14} {'vec cycles':>12} {'qzc cycles':>12}")
    for i, (pair, v, q) in enumerate(
        zip(pairs, vec.pair_results, qzc.pair_results)
    ):
        assert v.output == q.output == nw_edit_distance(pair.pattern, pair.text)
        print(f"{i:>4} {v.output:>14} {v.cycles:>12,} {q.cycles:>12,}")

    print(f"\ntotals: vec={vec.cycles:,} qzc={qzc.cycles:,} "
          f"speedup={vec.cycles / qzc.cycles:.2f}x")
    print("(the paper reports larger protein gains — 6.6x — because protein "
          "pairs\nneed many more edits, multiplying the accelerated "
          "iterations; raise the\ndivergence parameter to watch the speedup "
          "grow)")


if __name__ == "__main__":
    main()
