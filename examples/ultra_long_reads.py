#!/usr/bin/env python3
"""Section VI software support: reads beyond QBUFFER capacity.

A QBUFFER stores up to ~32.7Kbp of 2-bit-encoded sequence, but Oxford
Nanopore reads reach 2Mbp.  The paper's answer is software tiling: split
the read into QBUFFER-sized windows and align them independently.  This
script aligns a 100Kbp pair that cannot be staged whole, via
:class:`repro.align.tiling.TiledAligner`, in VEC and QUETZAL+C styles.

    python examples/ultra_long_reads.py
"""

from repro.align.quetzal_impl import WfaQzc
from repro.align.tiling import TiledAligner
from repro.align.vectorized import WfaVec
from repro.errors import QuetzalError
from repro.eval.runner import make_machine
from repro.genomics.generator import ErrorProfile, ReadPairGenerator

LENGTH = 100_000
TILE = 16_384


def main() -> None:
    gen = ReadPairGenerator(
        LENGTH, ErrorProfile(0.002, 0.001, 0.001), seed=13
    )
    pair = gen.pair()
    print(f"pair of ~{LENGTH:,}bp (ONT-like length, ~0.4% error)\n")

    print("staging the whole read directly:")
    try:
        WfaQzc(fast=True).run_pair(make_machine(quetzal=True), pair)
    except QuetzalError as exc:
        print(f"  rejected as expected -> {exc}\n")

    results = {}
    for name, inner, needs_qz in (
        ("VEC", WfaVec(fast=True), False),
        ("QUETZAL+C", WfaQzc(fast=True), True),
    ):
        tiled = TiledAligner(inner, tile=TILE)
        machine = make_machine(quetzal=needs_qz)
        results[name] = tiled.run_pair(machine, pair)

    vec, qzc = results["VEC"], results["QUETZAL+C"]
    out = qzc.output
    print(f"tiled alignment: {out.num_tiles} tiles of <= {TILE:,} symbols")
    print(f"  per-tile distances: {list(out.tile_distances)}")
    print(f"  edit-distance bound: {out.distance_bound} "
          f"(true distance is <= a few edits lower; seams may double-count)")
    assert vec.output.distance_bound == out.distance_bound
    print(f"\n{'style':<10}{'cycles':>14}")
    for name, result in results.items():
        print(f"{name:<10}{result.cycles:>14,}")
    print(f"\nQUETZAL+C speedup on the tiled ultra-long read: "
          f"{vec.cycles / qzc.cycles:.2f}x")


if __name__ == "__main__":
    main()
