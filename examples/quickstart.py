#!/usr/bin/env python3
"""Quickstart: align one read pair on a QUETZAL-accelerated simulated CPU.

Runs the same alignment four ways — autovectorised baseline, hand-
vectorised SVE (VEC), QUETZAL with QBUFFERs only (QZ), and QUETZAL with
the count ALU (QZ+C) — and prints the simulated cycle counts, the
speedups, and where each implementation spends its time.

    python examples/quickstart.py [read_length] [error_rate]
"""

import sys

from repro.align.baseline import WfaBase
from repro.align.needleman_wunsch import nw_edit_distance
from repro.align.quetzal_impl import WfaQz, WfaQzc
from repro.align.vectorized import WfaVec
from repro.eval.runner import make_machine
from repro.genomics.generator import ErrorProfile, ReadPairGenerator


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    error = float(sys.argv[2]) if len(sys.argv) > 2 else 0.02
    gen = ReadPairGenerator(
        length,
        ErrorProfile(error * 0.7, error * 0.15, error * 0.15),
        seed=42,
    )
    pair = gen.pair()
    print(f"Aligning a {length}bp pair (~{error * 100:.1f}% error rate)")
    print(f"  pattern: {str(pair.pattern)[:60]}...")
    print(f"  text:    {str(pair.text)[:60]}...")
    truth = nw_edit_distance(pair.pattern, pair.text)
    print(f"  reference edit distance (full NW table): {truth}\n")

    implementations = [
        ("baseline (autovec)", WfaBase(), False),
        ("VEC (SVE intrinsics)", WfaVec(), False),
        ("QUETZAL (QBUFFERs)", WfaQz(), True),
        ("QUETZAL+C (count ALU)", WfaQzc(), True),
    ]
    results = []
    for name, impl, needs_qz in implementations:
        machine = make_machine(quetzal=needs_qz)
        result = impl.run_pair(machine, pair)
        assert result.output == truth, "all styles must agree bit-for-bit"
        results.append((name, result))

    base_cycles = results[0][1].cycles
    print(f"{'implementation':<24}{'cycles':>10}{'speedup':>9}  time split")
    for name, result in results:
        shares = result.stats.breakdown()
        split = ", ".join(
            f"{k} {v * 100:.0f}%" for k, v in sorted(
                shares.items(), key=lambda kv: -kv[1]
            ) if v >= 0.05
        )
        print(
            f"{name:<24}{result.cycles:>10,}"
            f"{base_cycles / result.cycles:>8.2f}x  {split}"
        )
    print("\nWFA distance computed by every style:", truth)


if __name__ == "__main__":
    main()
