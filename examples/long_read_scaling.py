#!/usr/bin/env python3
"""Long-read scaling: where QUETZAL pulls away from VEC and the GPU.

Sweeps read length from short-read to HiFi territory, aligning one pair
per point with VEC and QUETZAL+C, and compares the projected 16-core CPU
throughput against the analytic WFA-GPU model.  Reproduces the central
long-read claim of the paper (Sections VII-A and VII-D) as a single script.

    python examples/long_read_scaling.py
"""

from repro.align.quetzal_impl import WfaQzc
from repro.align.vectorized import WfaVec
from repro.eval.multicore import multicore_time_seconds
from repro.eval.runner import make_machine, run_implementation
from repro.genomics.generator import (
    ErrorProfile,
    HIFI_PROFILE,
    ILLUMINA_PROFILE,
    ReadPairGenerator,
)
from repro.gpu.model import GpuAlignerModel, WFA_GPU

LENGTHS = (100, 250, 1000, 4000, 10_000)


def profile_for(length: int) -> ErrorProfile:
    return ILLUMINA_PROFILE if length <= 500 else HIFI_PROFILE


def main() -> None:
    gpu = GpuAlignerModel(WFA_GPU)
    print(
        f"{'length':>7} {'vec cyc':>11} {'qzc cyc':>11} {'qzc/vec':>8} "
        f"{'CPU16 pairs/s':>14} {'GPU pairs/s':>12} {'GPU occ':>8}"
    )
    for length in LENGTHS:
        prof = profile_for(length)
        pair = ReadPairGenerator(length, prof, seed=11).pair()
        vec = run_implementation(WfaVec(), [pair])
        qzc = run_implementation(WfaQzc(), [pair])
        cpu_rate = 1.0 / multicore_time_seconds(qzc, 16)
        gpu_rate = gpu.alignments_per_second(length, prof.total)
        print(
            f"{length:>7} {vec.cycles:>11,} {qzc.cycles:>11,} "
            f"{vec.cycles / qzc.cycles:>7.2f}x "
            f"{cpu_rate:>14,.0f} {gpu_rate:>12,.0f} "
            f"{gpu.occupancy(length, prof.total):>7.0%}"
        )
    print(
        "\nThe QUETZAL+C advantage over VEC grows with read length, and the "
        "GPU's\nthroughput collapses once per-alignment state exceeds its "
        "on-chip memory\n(the paper's Fig. 13a / Fig. 15a story)."
    )


if __name__ == "__main__":
    main()
