#!/usr/bin/env python3
"""Use case 5: a read-mapping-style pipeline — SneakySnake filter + WFA.

Generates a batch of candidate pairs where only some are true matches
(the rest are decoys, as a seed-and-extend mapper would produce), then
runs the filter+align pipeline in VEC and QUETZAL+C styles.  Shows the
filter's accept/reject decisions, the end-to-end cycle counts, and the
projected 16-core wall times (the Fig. 14b experiment in miniature).

    python examples/filter_then_align.py
"""

from repro.align.quetzal_impl import SsWfaPipelineQzc, SsWfaPipelineVec
from repro.eval.multicore import multicore_time_seconds
from repro.eval.runner import make_machine, run_implementation
from repro.genomics.generator import ErrorProfile, ReadPairGenerator, SequencePair


def build_candidates(n_true: int = 6, n_decoys: int = 6, length: int = 200):
    """True pairs mutated at 2%; decoys are unrelated random reads."""
    gen = ReadPairGenerator(
        length, ErrorProfile(0.015, 0.0025, 0.0025), seed=7
    )
    pairs = gen.pairs(n_true)
    for _ in range(n_decoys):
        pairs.append(
            SequencePair(gen.random_sequence(), gen.random_sequence())
        )
    return pairs


def main() -> None:
    pairs = build_candidates()
    threshold = 12
    print(f"{len(pairs)} candidate pairs, edit threshold E={threshold}\n")

    vec = run_implementation(
        SsWfaPipelineVec(threshold=threshold), pairs
    )
    qzc = run_implementation(
        SsWfaPipelineQzc(threshold=threshold), pairs, quetzal=True
    )

    print(f"{'pair':>4} {'verdict':>8} {'SS edits':>9} {'WFA distance':>13}")
    accepted = 0
    for i, (verdict, distance) in enumerate(qzc.outputs):
        accepted += verdict.accepted
        print(
            f"{i:>4} {'accept' if verdict.accepted else 'reject':>8} "
            f"{verdict.edits:>9} "
            f"{distance if distance is not None else '-':>13}"
        )
    print(f"\nfilter accepted {accepted}/{len(pairs)} pairs")

    print(f"\n{'style':<10}{'cycles':>12}{'16-core time':>16}")
    for name, run in (("VEC", vec), ("QUETZAL+C", qzc)):
        t16 = multicore_time_seconds(run, 16)
        print(f"{name:<10}{run.cycles:>12,}{t16 * 1e6:>13.1f} us")
    speedup = multicore_time_seconds(vec, 16) / multicore_time_seconds(qzc, 16)
    print(f"\nQUETZAL+C pipeline speedup on 16 cores: {speedup:.2f}x "
          "(paper Fig. 14b: 1.8x-3.6x)")


if __name__ == "__main__":
    main()
